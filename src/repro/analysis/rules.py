"""The shipped rules: the repo's contracts as machine-checked passes.

Each rule encodes an invariant the test suite can only catch *after* a
violation ships (see ``docs/analysis.md`` for the incident history
behind each one).  Rules are syntactic — no type inference — so each one
errs on the side of flagging and relies on ``# repro: allow[...]``
pragmas, with justifications, for the provably-safe sites.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import Finding, ModuleInfo, Project, Rule

__all__ = [
    "ALL_RULES",
    "DeterminismRule",
    "LockDisciplineRule",
    "DurabilityOrderingRule",
    "RegistryCompletenessRule",
    "ForkSafetyRule",
    "ExceptionHygieneRule",
    "default_rules",
]


def _in_scope(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


def _call_name(node: ast.AST) -> Optional[str]:
    """``foo(...)`` → ``foo``; anything else → None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _attr_call(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``base.method(...)`` with a Name base → (base, method)."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
    ):
        return (node.func.value.id, node.func.attr)
    return None


def _enclosing_function(
    module: ModuleInfo, node: ast.AST
) -> "Optional[ast.FunctionDef | ast.AsyncFunctionDef]":
    for ancestor in module.parent_chain(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


class DeterminismRule(Rule):
    """REP001 — reports must be byte-identical run to run.

    Flags, inside the engine / relational / report-emission scope:
    iteration over ``set``/``frozenset``/set comprehensions and over
    ``dict.keys()``; filesystem enumeration (``os.listdir``, ``glob``,
    ``Path.iterdir`` ...) not immediately wrapped in ``sorted()``;
    ``set(...)`` rebuilt inside a comprehension (order *and* cost bug);
    and wall-clock / randomness / uuid / builtin-``hash`` use (hash of
    ``str`` is PYTHONHASHSEED-dependent; ``__hash__`` bodies exempt).
    """

    code = "REP001"
    name = "determinism"
    rationale = (
        "Reports are contractually byte-identical across shard counts, "
        "worker schedules and storage backends (PRs 4/6)."
    )

    SCOPES = ("repro.engine", "repro.relational", "repro.cfd", "repro.deps",
              "repro.session", "repro.cli", "repro.registry")
    # Server metrics/timestamps are wall-clock by design; workloads and
    # benchmarks generate data and may use randomness freely.
    CLOCK_EXEMPT = ("repro.workloads", "repro.server")
    ORDER_EXEMPT = ("repro.workloads",)

    FS_ENUM_ATTRS = {
        "listdir", "scandir", "walk", "iglob", "iterdir", "rglob",
    }
    FS_ENUM_GLOB = {"glob"}
    CLOCK_MODULES = {"time", "random", "uuid"}

    def _is_setlike(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        name = _call_name(node)
        return name in {"set", "frozenset"}

    def _iter_targets(self, module: ModuleInfo) -> Iterator[Tuple[ast.AST, str]]:
        """Yield (iterated-expression, context) pairs for every loop."""
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                yield node.iter, "for-loop"
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    yield generator.iter, "comprehension"

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        findings: List[Finding] = []
        order_scoped = _in_scope(module.module, self.SCOPES) and not _in_scope(
            module.module, self.ORDER_EXEMPT
        )
        clock_scoped = _in_scope(module.module, self.SCOPES) and not _in_scope(
            module.module, self.CLOCK_EXEMPT
        )
        if order_scoped:
            findings.extend(self._check_order(module))
        if clock_scoped:
            findings.extend(self._check_clock(module))
        return findings

    def _check_order(self, module: ModuleInfo) -> Iterator[Finding]:
        for target, context in self._iter_targets(module):
            if self._is_setlike(target):
                yield module.finding(
                    self.code,
                    target,
                    f"iteration over a set in a {context} has "
                    "PYTHONHASHSEED-dependent order; wrap in sorted()",
                )
            attr = _attr_call(target)
            if attr and attr[1] == "keys":
                yield module.finding(
                    self.code,
                    target,
                    "iterating dict.keys() — iterate the dict directly, or "
                    "sorted(...) if order reaches output",
                )
        for node in ast.walk(module.tree):
            finding = self._check_fs_enum(module, node)
            if finding is not None:
                yield finding
        yield from self._check_set_in_comp(module)

    def _check_fs_enum(
        self, module: ModuleInfo, node: ast.AST
    ) -> Optional[Finding]:
        if not isinstance(node, ast.Call):
            return None
        label: Optional[str] = None
        attr = _attr_call(node)
        if attr and attr[1] in self.FS_ENUM_ATTRS:
            label = f"{attr[0]}.{attr[1]}()"
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in (self.FS_ENUM_ATTRS | self.FS_ENUM_GLOB)
        ):
            label = f"...{node.func.attr}()"
        elif _call_name(node) in (self.FS_ENUM_ATTRS | self.FS_ENUM_GLOB):
            label = f"{_call_name(node)}()"
        if label is None:
            return None
        parent = module.parents.get(node)
        if isinstance(parent, ast.Call) and _call_name(parent) in {
            "sorted", "len", "set", "frozenset",
        }:
            return None
        return module.finding(
            self.code,
            node,
            f"filesystem enumeration {label} yields OS-dependent order; "
            "wrap in sorted()",
        )

    def _check_set_in_comp(self, module: ModuleInfo) -> Iterator[Finding]:
        """``[a for a in xs if a in set(ys)]`` rebuilds the set per element."""
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                     ast.GeneratorExp)):
                continue
            interior: List[ast.AST] = []
            for generator in node.generators:
                interior.extend(generator.ifs)
            if isinstance(node, ast.DictComp):
                interior.extend((node.key, node.value))
            else:
                interior.append(node.elt)
            for part in interior:
                for sub in ast.walk(part):
                    if not isinstance(sub, ast.Compare):
                        continue
                    for op, comparator in zip(sub.ops, sub.comparators):
                        if (
                            isinstance(op, (ast.In, ast.NotIn))
                            and _call_name(comparator) in {"set", "frozenset"}
                            and getattr(comparator, "args", None)
                        ):
                            yield module.finding(
                                self.code,
                                comparator,
                                "membership test against set(...) rebuilt "
                                "per comprehension element; hoist the set "
                                "before the comprehension",
                            )

    def _check_clock(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            attr = _attr_call(node)
            if attr and attr[0] in self.CLOCK_MODULES:
                yield module.finding(
                    self.code,
                    node,
                    f"{attr[0]}.{attr[1]}() is non-deterministic; keep "
                    "clocks/randomness out of report paths",
                )
                continue
            if _call_name(node) == "hash":
                enclosing = _enclosing_function(module, node)
                if enclosing is not None and enclosing.name == "__hash__":
                    continue
                yield module.finding(
                    self.code,
                    node,
                    "builtin hash() outside __hash__ is PYTHONHASHSEED-"
                    "dependent for str/bytes; use a stable key instead",
                )


class LockDisciplineRule(Rule):
    """REP002 — server session/store state mutates only under a lock.

    Watched attributes of ``self`` (session maps, undo ledgers, metric
    counters) may only be assigned/mutated inside a ``with ...lock...:``
    block, in ``__init__``, or in a function annotated ``# repro:
    lock-held`` (callers own the lock).
    """

    code = "REP002"
    name = "lock-discipline"
    rationale = (
        "SessionManager and HostedSession state is shared across "
        "ThreadingHTTPServer request threads (PR 7)."
    )

    SCOPES = ("repro.server",)
    WATCHED = {
        "_sessions", "_rehydrating", "_undo", "_undo_counter",
        "_auto_counter", "created_total", "evicted_total", "closed_total",
        "counters", "requests_total",
        # degraded gating + lock-wait aggregates (PR 9)
        "failures", "degraded_since", "degraded_total", "last_error",
        "probe_in_flight", "lock_acquisitions", "lock_wait_seconds_total",
        "lock_wait_seconds_max", "lock_contended",
    }
    MUTATORS = {
        "pop", "popitem", "clear", "update", "move_to_end", "append",
        "extend", "add", "remove", "discard", "setdefault", "insert",
    }

    def _watched_self_attr(self, node: ast.AST) -> Optional[str]:
        """``self.<watched>`` or ``self.<watched>[...]`` → attr name."""
        if isinstance(node, ast.Subscript):
            node = node.value
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.WATCHED
        ):
            return node.attr
        return None

    def _under_lock(self, module: ModuleInfo, node: ast.AST) -> bool:
        for ancestor in module.parent_chain(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    try:
                        text = ast.unparse(item.context_expr)
                    except Exception:  # pragma: no cover - unparse is total
                        text = ""
                    if "lock" in text.lower():
                        return True
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if ancestor.name == "__init__":
                    return True
                if module.is_lock_held_marked(ancestor):
                    return True
                return False
        return True  # module level: import time, single-threaded

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not _in_scope(module.module, self.SCOPES):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            attr: Optional[str] = None
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, (ast.Assign, ast.Delete))
                    else [node.target]
                )
                for target in targets:
                    attr = self._watched_self_attr(target)
                    if attr:
                        break
            elif isinstance(node, ast.Call):
                pair = None
                if isinstance(node.func, ast.Attribute):
                    if node.func.attr in self.MUTATORS:
                        name = self._watched_self_attr(node.func.value)
                        if name:
                            pair = name
                attr = pair
            if attr and not self._under_lock(module, node):
                findings.append(
                    module.finding(
                        self.code,
                        node,
                        f"mutation of self.{attr} outside a with-lock scope; "
                        "hold the owning lock or mark the function "
                        "'# repro: lock-held'",
                    )
                )
        return findings


class DurabilityOrderingRule(Rule):
    """REP003 — WAL-append → fsync → respond; no raw writes bypass the WAL.

    (a) In ``repro.server`` outside ``durability`` itself, raw
    filesystem writes (``open(..., 'w')``, ``write_text``, ``rmtree``,
    ``rename`` ...) are forbidden — all session state flows through
    ``repro.server.durability``.
    (b) In ``_handle_*`` verbs: every state mutator needs a following
    ``persist_*`` call, no mutator may run after the last persist, and
    persists (which append+fsync) must sit in a ``try`` whose handler
    re-raises so failures roll back rather than acknowledge.
    """

    code = "REP003"
    name = "durability-ordering"
    rationale = (
        "PR 7's crash-safety contract: a response must never be sent "
        "for state that is not yet fsynced to the WAL."
    )

    SCOPES = ("repro.server",)
    EXEMPT_MODULES = ("repro.server.durability",)
    RAW_WRITE_ATTRS = {
        "write_text", "write_bytes", "rmtree", "unlink", "truncate",
        "rmdir", "mkdir", "makedirs",
    }
    # These names collide with non-filesystem methods (list.remove,
    # SessionManager.remove, str.replace) — only flag them on fs modules.
    AMBIGUOUS_WRITE_ATTRS = {"remove", "rename", "replace", "removedirs"}
    FS_BASES = {"os", "shutil"}
    WRITE_MODES = ("w", "a", "x", "+")
    MUTATORS = {
        "apply", "replace_rules", "add_rules", "repair",
        "remember_undo", "consume_undo", "clear_undo", "restore_undo_state",
    }
    PERSISTS = {
        "persist_apply", "persist_undo", "persist_rules", "persist_snapshot",
    }
    # Snapshot writes are tmp+fsync+rename outside the WAL-append path;
    # they do not need the rollback-guard shape the journal appends do.
    UNGUARDED_PERSISTS = {"persist_snapshot"}

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not _in_scope(module.module, self.SCOPES):
            return ()
        findings: List[Finding] = []
        if not _in_scope(module.module, self.EXEMPT_MODULES):
            findings.extend(self._check_raw_writes(module))
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef) and node.name.startswith(
                "_handle_"
            ):
                findings.extend(self._check_handler(module, node))
        return findings

    def _check_raw_writes(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) == "open":
                mode = ""
                if len(node.args) >= 2 and isinstance(
                    node.args[1], ast.Constant
                ):
                    mode = str(node.args[1].value)
                for keyword in node.keywords:
                    if keyword.arg == "mode" and isinstance(
                        keyword.value, ast.Constant
                    ):
                        mode = str(keyword.value.value)
                if any(flag in mode for flag in self.WRITE_MODES):
                    yield module.finding(
                        self.code,
                        node,
                        f"raw open(..., {mode!r}) in server code bypasses "
                        "repro.server.durability; route writes through the "
                        "journal",
                    )
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
                pair = _attr_call(node)
                ambiguous_on_fs = (
                    name in self.AMBIGUOUS_WRITE_ATTRS
                    and pair is not None
                    and pair[0] in self.FS_BASES
                )
                if name in self.RAW_WRITE_ATTRS or ambiguous_on_fs:
                    yield module.finding(
                        self.code,
                        node,
                        f"raw filesystem write .{name}() in server "
                        "code bypasses repro.server.durability",
                    )

    def _in_except(self, module: ModuleInfo, node: ast.AST) -> bool:
        return any(
            isinstance(a, ast.ExceptHandler) for a in module.parent_chain(node)
        )

    def _check_handler(
        self, module: ModuleInfo, handler: ast.FunctionDef
    ) -> Iterator[Finding]:
        mutator_calls: List[ast.Call] = []
        persist_calls: List[ast.Call] = []
        for node in ast.walk(handler):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            name = node.func.attr
            if name in self.PERSISTS:
                persist_calls.append(node)
            elif name in self.MUTATORS and not self._in_except(module, node):
                mutator_calls.append(node)
        if not mutator_calls:
            return
        if not persist_calls:
            yield module.finding(
                self.code,
                handler,
                f"write handler {handler.name} mutates session state but "
                "never calls a persist_* journal helper",
            )
            return
        last_persist_line = max(call.lineno for call in persist_calls)
        for call in mutator_calls:
            if call.lineno > last_persist_line:
                yield module.finding(
                    self.code,
                    call,
                    f"state mutation after the last persist_* call in "
                    f"{handler.name}; the response would acknowledge "
                    "unjournaled state",
                )
        for call in persist_calls:
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in self.UNGUARDED_PERSISTS
            ):
                continue
            if not self._persist_guarded(module, call):
                yield module.finding(
                    self.code,
                    call,
                    f"persist call in {handler.name} is not inside a try "
                    "whose except re-raises; journal failures must roll "
                    "back, not acknowledge",
                )

    def _persist_guarded(self, module: ModuleInfo, call: ast.Call) -> bool:
        for ancestor in module.parent_chain(call):
            if isinstance(ancestor, ast.Try):
                for except_handler in ancestor.handlers:
                    if any(
                        isinstance(sub, ast.Raise)
                        for sub in ast.walk(except_handler)
                    ):
                        return True
        return False


class RegistryCompletenessRule(Rule):
    """REP004 — every concrete Dependency subclass has a registered codec.

    Cross-module: collects the ``Dependency`` subclass closure from class
    definitions everywhere in the tree, then the set of classes passed to
    ``ConstraintCodec(tag, CLS, ...)`` / ``register_constraint``.  A
    concrete subclass with no codec cannot round-trip through changeset
    WALs or the HTTP API.
    """

    code = "REP004"
    name = "registry-completeness"
    rationale = (
        "Unregistered constraint classes fail at serve/persist time, not "
        "import time (PR 5/7 registry + WAL format)."
    )

    ROOT = "Dependency"

    def finish(self, project: Project) -> Iterable[Finding]:
        bases: Dict[str, Set[str]] = {}
        abstract: Set[str] = set()
        defined_in: Dict[str, ModuleInfo] = {}
        def_nodes: Dict[str, ast.ClassDef] = {}
        registered: Set[str] = set()
        for name in project.module_names():
            module = project.by_name[name]
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    base_names = set()
                    for base in node.bases:
                        if isinstance(base, ast.Name):
                            base_names.add(base.id)
                        elif isinstance(base, ast.Attribute):
                            base_names.add(base.attr)
                    bases[node.name] = base_names
                    defined_in.setdefault(node.name, module)
                    def_nodes.setdefault(node.name, node)
                    if base_names & {"ABC", "ABCMeta"} or self._has_abstract(
                        node
                    ):
                        abstract.add(node.name)
                    for keyword in node.keywords:
                        if keyword.arg == "metaclass":
                            abstract.add(node.name)
                elif isinstance(node, ast.Call):
                    if _call_name(node) == "ConstraintCodec" and len(
                        node.args
                    ) >= 2:
                        cls_arg = node.args[1]
                        if isinstance(cls_arg, ast.Name):
                            registered.add(cls_arg.id)
                    for keyword in (
                        node.keywords
                        if _call_name(node) == "ConstraintCodec"
                        else ()
                    ):
                        if keyword.arg == "cls" and isinstance(
                            keyword.value, ast.Name
                        ):
                            registered.add(keyword.value.id)
        descendants: Set[str] = set()
        frontier = {self.ROOT}
        while frontier:
            frontier = {
                cls
                for cls, cls_bases in bases.items()
                if cls_bases & frontier and cls not in descendants
            }
            descendants |= frontier
        findings: List[Finding] = []
        for cls in sorted(descendants):
            if cls in abstract or cls in registered:
                continue
            module = defined_in[cls]
            findings.append(
                module.finding(
                    self.code,
                    def_nodes[cls],
                    f"concrete Dependency subclass {cls} has no registered "
                    "ConstraintCodec; it cannot round-trip through the "
                    "registry or the session WAL",
                )
            )
        return findings

    def _has_abstract(self, node: ast.ClassDef) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in sub.decorator_list:
                    name = None
                    if isinstance(decorator, ast.Name):
                        name = decorator.id
                    elif isinstance(decorator, ast.Attribute):
                        name = decorator.attr
                    if name in {"abstractmethod", "abstractproperty"}:
                        return True
        return False


class ForkSafetyRule(Rule):
    """REP005 — modules reachable from the parallel workers must not
    create threading primitives, sockets or open handles at import time.

    Cross-module: computes the project-internal import closure of
    ``repro.engine.parallel`` and flags module-level / class-body
    assignments whose value constructs ``threading.Lock`` & friends,
    ``socket.socket``, ``open(...)`` or multiprocessing primitives — a
    forked worker would inherit them in an undefined state.
    """

    code = "REP005"
    name = "fork-safety"
    rationale = (
        "Pool workers import these modules; locks/handles created at "
        "import time are cloned into children mid-state (PR 4 parallel "
        "engine)."
    )

    ENTRY = "repro.engine.parallel"
    PRIMITIVE_ATTRS = {
        ("threading", "Lock"), ("threading", "RLock"),
        ("threading", "Condition"), ("threading", "Event"),
        ("threading", "Semaphore"), ("threading", "BoundedSemaphore"),
        ("threading", "local"), ("socket", "socket"),
        ("multiprocessing", "Lock"), ("multiprocessing", "RLock"),
        ("multiprocessing", "Queue"), ("multiprocessing", "Pool"),
    }
    PRIMITIVE_NAMES = {
        "Lock", "RLock", "Condition", "Event", "Semaphore",
        "BoundedSemaphore",
    }

    def _imports(self, module: ModuleInfo) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    names.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                if node.module:
                    base = node.module
                    if node.level:
                        prefix = module.module.split(".")
                        if module.path.name == "__init__.py":
                            anchor = prefix[: len(prefix) - node.level + 1]
                        else:
                            anchor = prefix[: len(prefix) - node.level]
                        base = ".".join(anchor + [node.module])
                    names.add(base)
                    for alias in node.names:
                        names.add(base + "." + alias.name)
        return names

    def finish(self, project: Project) -> Iterable[Finding]:
        if self.ENTRY not in project.by_name:
            return ()
        closure: Set[str] = set()
        frontier = [self.ENTRY]
        while frontier:
            current = frontier.pop()
            if current in closure or current not in project.by_name:
                continue
            closure.add(current)
            for imported in self._imports(project.by_name[current]):
                # Resolve "repro.x.y" where y may be a symbol, not a module.
                for candidate in (imported, imported.rsplit(".", 1)[0]):
                    if candidate in project.by_name and candidate not in closure:
                        frontier.append(candidate)
        findings: List[Finding] = []
        for name in sorted(closure):
            findings.extend(self._check_import_time(project.by_name[name]))
        return findings

    def _check_import_time(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in self._top_level_statements(module):
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                label = self._primitive_label(sub)
                if label:
                    yield module.finding(
                        self.code,
                        sub,
                        f"{label} created at import time in a module "
                        "imported into parallel workers; create it lazily "
                        "per process",
                    )

    def _top_level_statements(self, module: ModuleInfo) -> Iterator[ast.stmt]:
        def body_of(block: Iterable[ast.stmt]) -> Iterator[ast.stmt]:
            for statement in block:
                if isinstance(
                    statement, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue  # run-time, not import-time
                if isinstance(statement, ast.ClassDef):
                    yield from body_of(statement.body)
                else:
                    yield statement

        yield from body_of(module.tree.body)

    def _primitive_label(self, call: ast.Call) -> Optional[str]:
        pair = _attr_call(call)
        if pair and pair in self.PRIMITIVE_ATTRS:
            return f"{pair[0]}.{pair[1]}()"
        name = _call_name(call)
        if name in self.PRIMITIVE_NAMES:
            return f"{name}()"
        if name == "open":
            return "open() handle"
        return None


class ExceptionHygieneRule(Rule):
    """REP006 — engine and server code must not swallow exceptions.

    ``except:`` is always flagged; ``except Exception:`` (or
    ``BaseException``, alone or in a tuple) is flagged when its body
    only passes/continues.  Recovery paths that genuinely must proceed
    carry an ``# repro: allow[REP006]`` pragma with the justification.
    """

    code = "REP006"
    name = "exception-hygiene"
    rationale = (
        "PR 7's review found WAL losses hidden by blanket excepts; "
        "failures must surface as typed ReproErrors."
    )

    SCOPES = ("repro.engine", "repro.server", "repro.session")
    BLANKET = {"Exception", "BaseException"}

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        if not _in_scope(module.module, self.SCOPES):
            return ()
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    module.finding(
                        self.code,
                        node,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt; "
                        "name the exception types",
                    )
                )
                continue
            if self._is_blanket(node.type) and self._swallows(node):
                findings.append(
                    module.finding(
                        self.code,
                        node,
                        "blanket except silently swallows the exception; "
                        "raise a typed ReproError or pragma with a reason",
                    )
                )
        return findings

    def _is_blanket(self, node: ast.expr) -> bool:
        names: List[ast.expr] = (
            list(node.elts) if isinstance(node, ast.Tuple) else [node]
        )
        for name in names:
            if isinstance(name, ast.Name) and name.id in self.BLANKET:
                return True
        return False

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        for statement in handler.body:
            if isinstance(statement, ast.Pass):
                continue
            if isinstance(statement, ast.Continue):
                continue
            if isinstance(statement, ast.Expr) and isinstance(
                statement.value, ast.Constant
            ):
                continue  # docstring / Ellipsis
            return False
        return True


ALL_RULES = (
    DeterminismRule,
    LockDisciplineRule,
    DurabilityOrderingRule,
    RegistryCompletenessRule,
    ForkSafetyRule,
    ExceptionHygieneRule,
)


def default_rules() -> List[Rule]:
    return [cls() for cls in ALL_RULES]
