"""Command line driver: ``python -m repro.analysis [paths...]``.

Exit codes: 0 — clean (or all findings baselined); 1 — new findings
(or stale baseline entries under ``--strict-baseline``); 2 — usage
error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.core import Analyzer, Baseline, Finding
from repro.analysis.rules import default_rules

__all__ = ["main"]

DEFAULT_BASELINE = "analysis_baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-invariant static checker for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help=(
            "baseline ledger to diff against (default: "
            f"./{DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--stats",
        metavar="FILE",
        default=None,
        help="write per-rule hit counts as JSON (use '-' for stdout)",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="also fail when the baseline holds stale (fixed) entries",
    )
    return parser


def _emit_stats(analyzer: Analyzer, destination: str) -> None:
    document = {
        "files_scanned": analyzer.files_scanned,
        "rule_hits": {code: analyzer.stats[code] for code in sorted(analyzer.stats)},
        "total": sum(analyzer.stats.values()),
    }
    payload = json.dumps(document, indent=2) + "\n"
    if destination == "-":
        sys.stdout.write(payload)
    else:
        Path(destination).write_text(payload, encoding="utf-8")


def _emit_findings(findings: List[Finding], output_format: str) -> None:
    if output_format == "json":
        sys.stdout.write(
            json.dumps([f.to_dict() for f in findings], indent=2) + "\n"
        )
    else:
        for finding in findings:
            print(finding.render())


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)
    paths = [Path(p) for p in options.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        parser.error(f"no such path: {missing[0]}")

    analyzer = Analyzer(default_rules())
    findings = analyzer.run(paths)

    if options.stats:
        _emit_stats(analyzer, options.stats)

    if options.write_baseline:
        Baseline.from_findings(findings).dump(Path(options.write_baseline))
        print(
            f"wrote baseline with {len(findings)} finding(s) to "
            f"{options.write_baseline}"
        )
        return 0

    baseline: Optional[Baseline] = None
    if not options.no_baseline:
        baseline_path: Optional[Path] = None
        if options.baseline:
            baseline_path = Path(options.baseline)
            if not baseline_path.exists():
                parser.error(f"baseline not found: {baseline_path}")
        elif Path(DEFAULT_BASELINE).exists():
            baseline_path = Path(DEFAULT_BASELINE)
        if baseline_path is not None:
            baseline = Baseline.load(baseline_path)

    if baseline is None:
        _emit_findings(findings, options.format)
        if findings and options.format == "text":
            print(f"\n{len(findings)} finding(s)", file=sys.stderr)
        return 1 if findings else 0

    new, stale = baseline.diff(findings)
    _emit_findings(new, options.format)
    if options.format == "text":
        if new:
            print(
                f"\n{len(new)} new finding(s) not in baseline "
                f"({len(findings)} total, "
                f"{len(findings) - len(new)} baselined)",
                file=sys.stderr,
            )
        if stale:
            print(
                f"{len(stale)} stale baseline entr(y/ies) no longer "
                "observed; re-run with --write-baseline to shrink the "
                "ledger",
                file=sys.stderr,
            )
    if new:
        return 1
    if stale and options.strict_baseline:
        return 1
    return 0
