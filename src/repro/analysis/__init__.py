"""Repo-invariant static checker.

Whole-program ``ast`` analysis encoding the contracts the test suite can
only catch after the fact: report determinism (REP001), server lock
discipline (REP002), WAL durability ordering (REP003), registry
completeness (REP004), fork-safety of worker imports (REP005) and
exception hygiene (REP006).  See ``docs/analysis.md`` for the catalogue
and the pragma/baseline workflow.

Run as ``python -m repro.analysis [--baseline FILE] [paths...]``.
"""

from repro.analysis.core import (
    Analyzer,
    Baseline,
    Finding,
    ModuleInfo,
    Project,
    Rule,
)
from repro.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "default_rules",
]
