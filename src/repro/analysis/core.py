"""Framework for the repo-invariant static checker (:mod:`repro.analysis`).

This module is rule-agnostic: it knows how to load Python modules into
:class:`ModuleInfo` records (source, AST, parent links, pragma tables),
drive a list of :class:`Rule` instances over them (per-file passes plus a
whole-program ``finish`` pass), filter findings through inline
``# repro: allow[REP0xx]`` pragmas, and ratchet the result against a
committed :class:`Baseline` so adoption starts green and only *new*
findings fail CI.  The rules themselves — the repo's real contracts —
live in :mod:`repro.analysis.rules`.

Suppression pragmas:

``# repro: allow[REP001]``
    Suppress the named code(s) on this line, or — when the pragma heads
    a contiguous block of comment-only lines — on the first code line
    below the block, so justifications may span several comment lines.
    Several codes separate with commas: ``# repro: allow[REP001,REP006]``.
    Every pragma should carry a justification.

``# repro: lock-held``
    Marks the ``def`` it annotates (same line or the line directly
    above) as running with the owning lock already held — the lock
    discipline rule (REP002) then accepts watched-state mutations in
    its body.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "Analyzer",
    "Baseline",
    "Finding",
    "ModuleInfo",
    "Project",
    "Rule",
    "load_module",
    "collect_files",
]


_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9, ]+)\]")
_LOCK_HELD_RE = re.compile(r"#\s*repro:\s*lock-held\b")


class Finding:
    """One rule hit: a contract violation at a concrete source location.

    The baseline identity deliberately excludes the line number — a
    finding keyed ``(path, code, message)`` survives unrelated edits
    shifting the file, so the committed baseline does not churn.
    """

    __slots__ = ("code", "path", "line", "col", "message")

    def __init__(
        self, code: str, path: str, line: int, col: int, message: str
    ) -> None:
        self.code = code
        self.path = path
        self.line = line
        self.col = col
        self.message = message

    def key(self) -> Tuple[str, str, str]:
        """The baseline identity (line numbers excluded, see class doc)."""
        return (self.path, self.code, self.message)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def __repr__(self) -> str:
        return f"Finding({self.render()!r})"


class ModuleInfo:
    """One parsed source file: module name, AST + parent map, pragmas."""

    def __init__(
        self, path: Path, display_path: str, module: str, source: str
    ) -> None:
        self.path = path
        #: the path findings are reported (and baselined) under
        self.display_path = display_path
        #: dotted module name (``repro.engine.delta``); rules scope on it
        self.module = module
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        #: line → frozenset of allowed codes (from ``# repro: allow[...]``)
        self.allow: Dict[int, frozenset] = {}
        #: lines carrying a ``# repro: lock-held`` marker
        self.lock_held_lines: set = set()
        for lineno, text in enumerate(self.lines, start=1):
            match = _ALLOW_RE.search(text)
            if match:
                codes = frozenset(
                    c.strip() for c in match.group(1).split(",") if c.strip()
                )
                self.allow[lineno] = codes
            if _LOCK_HELD_RE.search(text):
                self.lock_held_lines.add(lineno)
        #: child AST node → parent AST node (lexical walks for the rules)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    def allowed(self, code: str, line: int) -> bool:
        """True iff a pragma allows ``code`` here.

        A pragma applies on its own line and, when it heads a contiguous
        block of comment-only lines, on the first code line below that
        block — so justifications may span several comment lines.
        """
        codes = self.allow.get(line)
        if codes and code in codes:
            return True
        candidate = line - 1
        while candidate >= 1:
            text = self.lines[candidate - 1].strip()
            if not text.startswith("#"):
                break
            codes = self.allow.get(candidate)
            if codes and code in codes:
                return True
            candidate -= 1
        return False

    def is_lock_held_marked(self, node: ast.AST) -> bool:
        """True iff a ``# repro: lock-held`` marker annotates this ``def``."""
        line = getattr(node, "lineno", 0)
        return bool(
            self.lock_held_lines & {line, line - 1}
        )

    def parent_chain(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def finding(
        self, code: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            code,
            self.display_path,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0) + 1,
            message,
        )


class Project:
    """Every module of one analysis run (the cross-module pass input)."""

    def __init__(self, modules: List[ModuleInfo]) -> None:
        self.modules = modules
        self.by_name: Dict[str, ModuleInfo] = {m.module: m for m in modules}

    def module_names(self) -> List[str]:
        return sorted(self.by_name)


class Rule:
    """Base class for one checked contract.

    ``check_module`` runs once per file; ``finish`` runs once after every
    file has been seen and receives the whole :class:`Project` — the hook
    for cross-module contracts (registry completeness, fork-safety import
    closures).  Either may be a no-op.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def check_module(self, module: ModuleInfo) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        return ()


def _module_name(path: Path) -> str:
    """Dotted module name; anchored at the last ``repro`` path component
    so both ``src/repro/...`` checkouts and test fixture trees resolve."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return ".".join(parts[index:])
    return ".".join(parts[-2:]) if len(parts) >= 2 else parts[-1]


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    found: List[Path] = []
    for path in paths:
        if path.is_dir():
            found.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            found.append(path)
    seen: Dict[Path, None] = {}
    for path in found:
        seen.setdefault(path, None)
    return list(seen)


def _display_path(path: Path) -> str:
    """Report paths relative to the working directory when possible —
    the committed baseline then reads the same on every checkout."""
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def load_module(path: Path) -> ModuleInfo:
    source = path.read_text(encoding="utf-8")
    return ModuleInfo(path, _display_path(path), _module_name(path), source)


class Analyzer:
    """Drive a rule list over a file set; pragma-filter; count hits."""

    def __init__(self, rules: Iterable[Rule]) -> None:
        self.rules = list(rules)
        #: per-rule raw hit counts of the last run (pre-pragma findings
        #: are *not* counted: an allowed line is not a hit)
        self.stats: Dict[str, int] = {}
        self.files_scanned = 0

    def run(self, paths: Iterable[Path]) -> List[Finding]:
        files = collect_files(paths)
        modules: List[ModuleInfo] = []
        findings: List[Finding] = []
        for path in files:
            module = load_module(path)
            modules.append(module)
            for rule in self.rules:
                findings.extend(rule.check_module(module))
        project = Project(modules)
        for rule in self.rules:
            findings.extend(rule.finish(project))
        by_path = {m.display_path: m for m in modules}
        kept = [
            finding
            for finding in findings
            if not (
                finding.path in by_path
                and by_path[finding.path].allowed(finding.code, finding.line)
            )
        ]
        kept.sort(key=Finding.sort_key)
        self.files_scanned = len(files)
        self.stats = {rule.code: 0 for rule in self.rules}
        for finding in kept:
            self.stats[finding.code] = self.stats.get(finding.code, 0) + 1
        return kept


class Baseline:
    """The committed debt ledger: keyed finding counts.

    ``new`` findings are those whose key is absent from the ledger or
    occurs more often than the ledger records — the ratchet only ever
    lets the counts shrink.  ``stale`` entries (recorded but no longer
    observed) are reported so the ledger can be re-written smaller.
    """

    VERSION = 1

    def __init__(
        self, counts: Optional[Dict[Tuple[str, str, str], int]] = None
    ) -> None:
        self.counts: Dict[Tuple[str, str, str], int] = dict(counts or {})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[Tuple[str, str, str], int] = {}
        for finding in findings:
            key = finding.key()
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        document = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(document, dict) or "findings" not in document:
            raise ValueError(
                f"{path} is not an analysis baseline document "
                "(expected {'version': ..., 'findings': [...]})"
            )
        counts: Dict[Tuple[str, str, str], int] = {}
        for entry in document["findings"]:
            key = (entry["path"], entry["code"], entry["message"])
            counts[key] = counts.get(key, 0) + int(entry.get("count", 1))
        return cls(counts)

    def dump(self, path: Path) -> None:
        entries = [
            {"path": p, "code": c, "message": m, "count": n}
            for (p, c, m), n in sorted(self.counts.items())
        ]
        document = {"version": self.VERSION, "findings": entries}
        path.write_text(
            json.dumps(document, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def diff(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Tuple[str, str, str]]]:
        """Split findings into (new, stale-ledger-keys) against the ledger."""
        remaining = dict(self.counts)
        new: List[Finding] = []
        for finding in findings:
            key = finding.key()
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
            else:
                new.append(finding)
        stale = sorted(key for key, count in remaining.items() if count > 0)
        return new, stale
