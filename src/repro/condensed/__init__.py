"""Condensed representations of repairs (paper §5.3): tableaux with
variables, homomorphisms/subsumption, merge-nuclei, and world-set
decompositions."""

from repro.condensed.nucleus import certain_answers_on_nucleus, nucleus
from repro.condensed.tableau import (
    TVar,
    find_homomorphism,
    is_variable,
    subsumes,
    variables_of,
)
from repro.condensed.wsd import WorldSetDecomposition, decompose_repairs

__all__ = [
    "TVar",
    "WorldSetDecomposition",
    "certain_answers_on_nucleus",
    "decompose_repairs",
    "find_homomorphism",
    "is_variable",
    "nucleus",
    "subsumes",
    "variables_of",
]
