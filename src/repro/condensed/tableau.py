"""Tableaux with variables: the substrate for condensed repair
representations (paper §5.3).

A tableau is a relation instance whose cells may be *tableau variables* —
placeholders that stand for any domain value.  Following [68] (Wijsen's
nuclei), the key notions are

* **homomorphism** h: variables → values/variables, identity on constants,
  with h(T1) ⊆ T2;
* **subsumption** of tableaux, via homomorphisms, which captures the
  minimality of U-repairs.

Tableau variables are ordinary Python values (hashable, equal only to
themselves), so tableaux live inside normal
:class:`~repro.relational.instance.RelationInstance` objects and are
queried with the normal algebra — exactly how a "strong dependency system"
is supposed to work: evaluate the query on the single condensed table.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Tuple as PyTuple

from repro.relational.instance import RelationInstance

__all__ = ["TVar", "is_variable", "variables_of", "find_homomorphism", "subsumes"]


class TVar:
    """A tableau variable (equal only to itself)."""

    __slots__ = ("label",)
    _counter = itertools.count()

    def __init__(self, label: str | None = None):
        self.label = label if label is not None else f"x{next(TVar._counter)}"

    def __repr__(self) -> str:
        return f"?{self.label}"

    # identity-based equality/hash inherited from object is exactly what a
    # tableau variable needs, but an explicit label keeps output readable.


def is_variable(value: Any) -> bool:
    """True iff the cell value is a tableau variable."""
    return isinstance(value, TVar)


def variables_of(instance: RelationInstance) -> List[TVar]:
    """All distinct variables appearing in the tableau (first-seen order)."""
    seen: Dict[TVar, None] = {}
    for t in instance:
        for value in t.values():
            if is_variable(value) and value not in seen:
                seen[value] = None
    return list(seen)


def _apply(row: PyTuple[Any, ...], assignment: Dict[TVar, Any]) -> PyTuple[Any, ...]:
    return tuple(assignment.get(v, v) if is_variable(v) else v for v in row)


def find_homomorphism(
    source: RelationInstance, target: RelationInstance
) -> Optional[Dict[TVar, Any]]:
    """A variable assignment h with h(source) ⊆ target, or None.

    Backtracking over the source rows; target cells (constants or target
    variables) are the candidate images.  Exponential in the worst case —
    homomorphism checking is NP-complete — fine at tableau scale.
    """
    source_rows = [t.values() for t in source]
    target_rows = [t.values() for t in target]

    def extend(
        index: int, assignment: Dict[TVar, Any]
    ) -> Optional[Dict[TVar, Any]]:
        if index == len(source_rows):
            return dict(assignment)
        row = source_rows[index]
        for target_row in target_rows:
            trial = dict(assignment)
            ok = True
            for cell, image in zip(row, target_row):
                if is_variable(cell):
                    bound = trial.get(cell, cell)
                    if is_variable(bound) and bound is cell:
                        trial[cell] = image
                    elif bound != image:
                        ok = False
                        break
                elif cell != image:
                    ok = False
                    break
            if ok:
                result = extend(index + 1, trial)
                if result is not None:
                    return result
        return None

    return extend(0, {})


def subsumes(general: RelationInstance, specific: RelationInstance) -> bool:
    """True iff a homomorphism maps ``general`` into ``specific``.

    ``general ⊑ specific``: every way of reading ``specific`` is covered by
    some instantiation of ``general`` — the subsumption order [68] uses to
    state U-repair minimality in tableau terms.
    """
    return find_homomorphism(general, specific) is not None
