"""Nuclei: single-tableau representations of all U-repairs (paper §5.3).

Wijsen [68] shows that for full dependencies a tableau G (the *nucleus*)
can represent every U-repair of D: G is homomorphic to all repairs, and
consistent answers to conjunctive queries are obtained by evaluating the
query on G directly and keeping the variable-free answers.

This module implements the construction for FD/CFD-style equality-
generating dependencies by *merging*: while some pattern row has two
tuples forced to agree on its LHS but differing on its RHS, the two tuples
are merged into one whose disagreeing cells become fresh tableau
variables.  Each merge strictly decreases the tuple count, so the
construction terminates; for key-style FDs the result is the textbook
nucleus (one tuple per key group, variables on the conflicting
attributes).  The exponential-size lower bound of [68] concerns arbitrary
full dependencies; the EXP-NUCLEUS benchmark exhibits the growth of the
repair space next to the linear-size nucleus for the Example 5.1 family.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple as PyTuple

from repro.cfd.model import CFD, UNNAMED, fd_as_cfd
from repro.condensed.tableau import TVar, is_variable
from repro.deps.fd import FD
from repro.relational.instance import RelationInstance
from repro.relational.tuples import Tuple

__all__ = ["nucleus", "certain_answers_on_nucleus"]


def _pattern_matches(value: Any, expected: Any) -> bool:
    """≍ on a tableau cell: variables do not match constants (they stand
    for arbitrary values, so matching is not *forced*)."""
    if expected is UNNAMED:
        return True
    return not is_variable(value) and value == expected


def _find_merge_pair(
    rows: List[PyTuple[Any, ...]],
    attr_index: Dict[str, int],
    cfds: Sequence[CFD],
) -> Optional[PyTuple[int, int, CFD]]:
    for cfd in cfds:
        lhs_idx = [attr_index[a] for a in cfd.lhs]
        rhs_idx = [attr_index[a] for a in cfd.rhs]
        for tp in cfd.tableau:
            lhs_expected = [tp.get(a) for a in cfd.lhs]
            for i in range(len(rows)):
                row_i = rows[i]
                if not all(
                    _pattern_matches(row_i[k], e)
                    for k, e in zip(lhs_idx, lhs_expected)
                ):
                    continue
                for j in range(i + 1, len(rows)):
                    row_j = rows[j]
                    if any(row_i[k] != row_j[k] for k in lhs_idx):
                        continue
                    if not all(
                        _pattern_matches(row_j[k], e)
                        for k, e in zip(lhs_idx, lhs_expected)
                    ):
                        continue
                    if any(row_i[k] != row_j[k] for k in rhs_idx):
                        return i, j, cfd
    return None


def nucleus(
    instance: RelationInstance, dependencies: Sequence[FD | CFD]
) -> RelationInstance:
    """The merge-nucleus of ``instance`` w.r.t. FD/CFD dependencies.

    Conflicting tuples are merged; cells on which they disagree become
    fresh tableau variables.  The result satisfies: every variable-free
    conjunctive-query answer on the nucleus is a consistent answer on the
    original instance (tests cross-check against repair enumeration).
    """
    cfds = [fd_as_cfd(d) if isinstance(d, FD) else d for d in dependencies]
    attr_index = {
        a: i for i, a in enumerate(instance.schema.attribute_names)
    }
    rows: List[PyTuple[Any, ...]] = [t.values() for t in instance]
    while True:
        found = _find_merge_pair(rows, attr_index, cfds)
        if found is None:
            break
        i, j, _ = found
        row_i, row_j = rows[i], rows[j]
        merged = tuple(
            a if a == b else TVar() for a, b in zip(row_i, row_j)
        )
        rows = [r for k, r in enumerate(rows) if k not in (i, j)]
        rows.append(merged)
    result = RelationInstance(instance.schema)
    for row in rows:
        result.add(Tuple(instance.schema, row, validate=False))
    return result


def certain_answers_on_nucleus(
    nucleus_instance: RelationInstance,
    query,
) -> Set[tuple]:
    """Evaluate a query on the nucleus, keep the variable-free answers.

    ``query`` maps a RelationInstance to a RelationInstance (use the
    algebra functions or a lambda); rows mentioning a tableau variable are
    possible-but-not-certain and are dropped.
    """
    result = query(nucleus_instance)
    return {
        t.values()
        for t in result
        if not any(is_variable(v) for v in t.values())
    }
