"""World-set decompositions for repair spaces (paper §5.3, [4, 5]).

"A notion of world-set decompositions (WSDs) has recently been proposed
to represent finite sets of possible worlds, by means of the product of
decomposed relations ... query constructs are proposed for specifying
repairs w.r.t. keys as WSDs."

For denial-class dependencies, conflicts are local: the repair space is
the *product* of the per-conflict-component repair choices, with the
conflict-free tuples shared by every world.  A :class:`WorldSetDecomposition`
stores exactly that — one block of alternatives per component plus the
common core — so a 2^n-world repair space occupies O(n) memory, worlds can
be streamed on demand, counted in O(#blocks), and certain answers to
per-tuple (selection/projection) queries computed without enumeration.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterator, List, Sequence, Set, Tuple as PyTuple

from repro.deps.base import Dependency
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.tuples import Tuple
from repro.repair.enumerate import conflict_components
from repro.repair.xrepair import all_x_repairs

__all__ = ["WorldSetDecomposition", "decompose_repairs"]

Cell = PyTuple[str, Tuple]


class WorldSetDecomposition:
    """Common core + independent blocks of alternative cell-sets."""

    def __init__(
        self,
        schema,
        core: Sequence[Cell],
        blocks: Sequence[Sequence[frozenset]],
    ):
        self.schema = schema
        self.core: List[Cell] = list(core)
        self.blocks: List[List[frozenset]] = [list(b) for b in blocks]

    def world_count(self) -> int:
        """Number of represented worlds — a product, not an enumeration."""
        count = 1
        for block in self.blocks:
            count *= len(block)
        return count

    def size(self) -> int:
        """Cells stored (the succinctness measure of §5.3)."""
        return len(self.core) + sum(
            len(alt) for block in self.blocks for alt in block
        )

    def worlds(self) -> Iterator[DatabaseInstance]:
        """Stream every world (lazy; 2^n worlds never co-reside in memory)."""
        for combo in itertools.product(*self.blocks) if self.blocks else [()]:
            db = DatabaseInstance(self.schema)
            for relation, t in self.core:
                db.relation(relation).add(t)
            for alternative in combo:
                for relation, t in alternative:
                    db.relation(relation).add(t)
            yield db

    def certain_cells(self) -> Set[Cell]:
        """Cells present in *every* world: the core plus any cell common to
        all alternatives of its block."""
        certain: Set[Cell] = set(self.core)
        for block in self.blocks:
            shared = set(block[0])
            for alternative in block[1:]:
                shared &= set(alternative)
            certain |= shared
        return certain

    def certain_answers(
        self, query: Callable[[DatabaseInstance], RelationInstance]
    ) -> Set[tuple]:
        """Certain answers for per-tuple monotone queries (σ/π over one
        relation): computed from the certain cells without enumerating
        worlds — exact because such a query's answer on a world is the
        union of its answers on individual tuples."""
        db = DatabaseInstance(self.schema)
        for relation, t in self.certain_cells():
            db.relation(relation).add(t)
        return {t.values() for t in query(db)}


def decompose_repairs(
    db: DatabaseInstance,
    dependencies: Sequence[Dependency],
    per_component_limit: int = 10_000,
) -> WorldSetDecomposition:
    """Build the WSD of the X-repair space of ``db`` w.r.t. denial-class
    dependencies.

    Each conflict component contributes one block whose alternatives are
    the component's local repairs; conflict-free tuples form the core.
    """
    components = conflict_components(db, dependencies)
    conflicted: Set[Cell] = (
        set().union(*components) if components else set()
    )
    core: List[Cell] = []
    for relation in db.schema.relation_names:
        for t in db.relation(relation):
            if (relation, t) not in conflicted:
                core.append((relation, t))
    blocks: List[List[frozenset]] = []
    for component in components:
        # repair the component in isolation (core tuples don't interact
        # with it for denial-class constraints)
        sub = DatabaseInstance(db.schema)
        for relation, t in component:
            sub.relation(relation).add(t)
        alternatives = []
        for repair in all_x_repairs(sub, dependencies, per_component_limit):
            cells = frozenset(
                (relation, t)
                for relation in repair.schema.relation_names
                for t in repair.relation(relation)
            )
            alternatives.append(cells)
        blocks.append(alternatives)
    return WorldSetDecomposition(db.schema, core, blocks)
