"""Seeded multi-tenant population for the soak harness.

Each *tenant* is one named server session: a small two-relation schema
(``R``/``S``), an adversarial rule set drawn from the same generator
family as the 340-case differential corpus (``tests/engine/
test_differential.py`` — FDs, CFDs, eCFDs, INDs, CINDs and denial
constraints all meeting batched edits), and a seeded starting instance.
Everything is expressed as wire documents (the registry's canonical
JSON), so one :class:`TenantSpec` can build the server-side session over
HTTP *and* the offline shadow :class:`~repro.session.Session` the
verifier replays — byte-equality between the two is the whole point of
the soak (:mod:`repro.workloads.soak`).

Tenant popularity is Zipf-skewed (:func:`zipf_weights`): a handful of
hot tenants absorb most of the traffic while the long tail goes cold and
gets evicted under ``--max-sessions`` pressure — the realistic shape of
multi-tenant load.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Mapping, Optional

from repro.cfd.ecfd import ECFD, SetPattern
from repro.cfd.model import CFD, UNNAMED
from repro.cind.model import CIND
from repro.deps.base import Dependency
from repro.deps.denial import DenialConstraint
from repro.deps.fd import FD
from repro.deps.ind import IND
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import And, Comparison
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.session import Session

__all__ = ["TenantSpec", "make_tenants", "random_rule_documents", "zipf_weights"]

#: the shared value pool — small on purpose, so edits collide with rules
VALUES = ("a", "b", "c")


class TenantSpec:
    """One tenant's full definition, as wire documents.

    ``schema_doc``/``rules_docs``/``data`` are exactly what
    ``POST /sessions`` accepts inline, and what
    :meth:`build_session` feeds the offline replay."""

    __slots__ = ("tenant_id", "seed", "schema_doc", "rules_docs", "data")

    def __init__(
        self,
        tenant_id: str,
        seed: int,
        schema_doc: Dict[str, Any],
        rules_docs: List[Dict[str, Any]],
        data: Dict[str, List[Dict[str, Any]]],
    ) -> None:
        self.tenant_id = tenant_id
        self.seed = seed
        self.schema_doc = schema_doc
        self.rules_docs = rules_docs
        self.data = data

    def creation_document(self) -> Dict[str, Any]:
        """The ``POST /sessions`` body for this tenant."""
        return {
            "id": self.tenant_id,
            "schema": self.schema_doc,
            "rules": self.rules_docs,
            "data": {rel: list(rows) for rel, rows in self.data.items()},
        }

    def build_session(
        self, data: Optional[Mapping[str, List[Dict[str, Any]]]] = None
    ) -> Session:
        """An offline :class:`Session` equivalent to the served one.

        ``data`` overrides the initial rows (the soak driver rebuilds
        evicted non-durable tenants from the shadow's *current* rows)."""
        from repro.rules_json import database_schema_from_dict, rules_from_list

        db_schema = database_schema_from_dict(self.schema_doc)
        rules = rules_from_list(self.rules_docs, db_schema)
        db = DatabaseInstance(db_schema)
        for rel_name, rows in (data if data is not None else self.data).items():
            relation = db.relation(rel_name)
            for row in rows:
                relation.add(row)
        return Session.from_instance(db, rules)


# --------------------------------------------------------------------------
# Corpus-style generators (mirroring tests/engine/test_differential.py)
# --------------------------------------------------------------------------


def _random_schema(rng: random.Random) -> DatabaseSchema:
    r_arity = rng.randrange(3, 5)
    s_arity = rng.randrange(2, 4)
    r = RelationSchema("R", [(f"A{i}", STRING) for i in range(r_arity)])
    s = RelationSchema("S", [(f"X{i}", STRING) for i in range(s_arity)])
    return DatabaseSchema([r, s])


def _random_fd(attrs: List[str], rng: random.Random) -> FD:
    lhs = rng.sample(attrs, rng.randrange(1, min(3, len(attrs))))
    rhs = [rng.choice([a for a in attrs if a not in lhs])]
    return FD("R", lhs, rhs)


def _random_cfd(attrs: List[str], rng: random.Random) -> CFD:
    lhs = rng.sample(attrs, rng.randrange(1, min(3, len(attrs))))
    rhs = [rng.choice([a for a in attrs if a not in lhs])]
    rows = []
    for _ in range(rng.randrange(1, 4)):
        rows.append(
            {
                a: (
                    rng.choice([UNNAMED, *VALUES])
                    if rng.random() < 0.7
                    else UNNAMED
                )
                for a in lhs + rhs
            }
        )
    return CFD("R", lhs, rhs, rows)


def _random_ecfd(attrs: List[str], rng: random.Random) -> ECFD:
    lhs = rng.sample(attrs, rng.randrange(1, min(3, len(attrs))))
    rhs = [rng.choice([a for a in attrs if a not in lhs])]
    pattern = {}
    for a in lhs + rhs:
        if rng.random() < 0.5:
            continue  # wildcard
        values = rng.sample(VALUES, rng.randrange(1, 3))
        pattern[a] = SetPattern(values, negated=rng.random() < 0.4)
    return ECFD("R", lhs, rhs, pattern)


def _random_inclusion(
    schema: DatabaseSchema, rng: random.Random
) -> Dependency:
    r_attrs = list(schema.relation("R").attribute_names)
    s_attrs = list(schema.relation("S").attribute_names)
    width = rng.randrange(1, min(len(r_attrs), len(s_attrs)) + 1)
    lhs = rng.sample(r_attrs, width)
    rhs = rng.sample(s_attrs, width)
    if rng.random() < 0.5:
        return IND("R", lhs, "S", rhs)
    lhs_free = [a for a in r_attrs if a not in lhs]
    rhs_free = [a for a in s_attrs if a not in rhs]
    lhs_pat = rng.sample(lhs_free, rng.randrange(0, len(lhs_free) + 1))
    rhs_pat = rng.sample(rhs_free, rng.randrange(0, len(rhs_free) + 1))
    rows = []
    for _ in range(rng.randrange(1, 3)):
        row = {f"L.{a}": rng.choice(VALUES) for a in lhs_pat}
        row.update({f"R.{a}": rng.choice(VALUES) for a in rhs_pat})
        rows.append(row)
    return CIND(
        "R",
        lhs,
        "S",
        rhs,
        lhs_pattern_attrs=lhs_pat,
        rhs_pattern_attrs=rhs_pat,
        tableau=rows,
    )


def _random_denial(
    schema: DatabaseSchema, rng: random.Random
) -> DenialConstraint:
    r_attrs = list(schema.relation("R").attribute_names)
    s_attrs = list(schema.relation("S").attribute_names)
    shape = rng.randrange(3)
    if shape == 0:
        picked = rng.sample(r_attrs, rng.randrange(1, 3))
        condition = And(
            [Comparison(f"@t0.{a}", "=", rng.choice(VALUES)) for a in picked]
        )
        return DenialConstraint(
            ("R",), condition, name=f"deny-const-{'-'.join(picked)}"
        )
    if shape == 1:
        agree, differ = rng.sample(r_attrs, 2)
        condition = And(
            [
                Comparison(f"@t0.{agree}", "=", f"@t1.{agree}"),
                Comparison(f"@t0.{differ}", "!=", f"@t1.{differ}"),
            ]
        )
        return DenialConstraint(
            ("R", "R"), condition, name=f"deny-fd-{agree}-{differ}"
        )
    a = rng.choice(r_attrs)
    x = rng.choice(s_attrs)
    condition = And(
        [
            Comparison(f"@t0.{a}", "=", f"@t1.{x}"),
            Comparison(f"@t0.{a}", "=", rng.choice(VALUES)),
        ]
    )
    return DenialConstraint(("R", "S"), condition, name=f"deny-join-{a}-{x}")


def _random_dependencies(
    schema: DatabaseSchema, rng: random.Random
) -> List[Dependency]:
    r_attrs = list(schema.relation("R").attribute_names)
    makers = [
        lambda: _random_fd(r_attrs, rng),
        lambda: _random_cfd(r_attrs, rng),
        lambda: _random_ecfd(r_attrs, rng),
        lambda: _random_inclusion(schema, rng),
        lambda: _random_denial(schema, rng),
    ]
    return [rng.choice(makers)() for _ in range(rng.randrange(2, 7))]


def _random_rows(
    schema: DatabaseSchema, rng: random.Random
) -> Dict[str, List[Dict[str, Any]]]:
    data: Dict[str, List[Dict[str, Any]]] = {}
    for rel in schema:
        attrs = list(rel.attribute_names)
        data[rel.name] = [
            {a: rng.choice(VALUES) for a in attrs}
            for _ in range(rng.randrange(4, 17))
        ]
    return data


# --------------------------------------------------------------------------
# Public surface
# --------------------------------------------------------------------------


def make_tenants(count: int, seed: int) -> List[TenantSpec]:
    """``count`` deterministic tenant specs derived from ``seed``.

    Tenant *i* is generated from ``seed + i`` — stable ids, schemas,
    rules and rows for a given (count, seed) pair, independent of how
    many tenants the caller slices off."""
    from repro.rules_json import database_schema_to_dict, rules_to_list

    if count < 1:
        raise ValueError("need at least one tenant")
    tenants: List[TenantSpec] = []
    for index in range(count):
        tenant_seed = seed + index
        rng = random.Random(tenant_seed)
        schema = _random_schema(rng)
        rules = _random_dependencies(schema, rng)
        tenants.append(
            TenantSpec(
                tenant_id=f"tenant-{index:03d}",
                seed=tenant_seed,
                schema_doc=database_schema_to_dict(schema),
                rules_docs=rules_to_list(rules),
                data=_random_rows(schema, rng),
            )
        )
    return tenants


def random_rule_documents(
    spec: TenantSpec, rng: random.Random
) -> List[Dict[str, Any]]:
    """One fresh random rule for ``spec``'s schema, as wire documents.

    Used for live ``POST .../rules`` round-trips during the soak: server
    and shadow parse the *same* documents through the registry, so the
    two rule sets stay identical by construction."""
    from repro.rules_json import database_schema_from_dict, rules_to_list

    schema = database_schema_from_dict(spec.schema_doc)
    return rules_to_list(_random_dependencies(schema, rng)[:1])


def zipf_weights(count: int, exponent: float = 1.1) -> List[float]:
    """Zipf-style popularity weights: weight(rank) = 1 / rank**exponent.

    Rank order is list order — tenant 0 is the hottest.  ``exponent``
    around 1 matches the classic web-traffic skew; larger values
    concentrate traffic harder on the head."""
    if count < 1:
        raise ValueError("need at least one weight")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    return [1.0 / (rank**exponent) for rank in range(1, count + 1)]
