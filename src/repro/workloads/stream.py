"""Streaming edit workload: batched inserts/deletes/updates over time.

Production monitoring is not detect-once: the relation keeps changing and
the violation set must keep up.  This workload turns any database instance
into a seeded stream of edit batches — each batch mixing fresh inserts,
deletions of live tuples, and single-cell updates drawn from the active
domains — and drives them through the delta engine
(:class:`~repro.engine.delta.DeltaEngine`), recording what every batch did
to the violation set and how long maintenance took.

The generator reads the live instance at every step (deletes and updates
target tuples that exist *now*, after all previous batches), so it must be
consumed interleaved with application — exactly what :func:`run_stream`
does, and what the ``repro.cli stream`` subcommand and
``benchmarks/bench_incremental.py`` build on.
"""

from __future__ import annotations

import random
from typing import Dict, Iterator, List, Optional, Sequence

from repro.deps.base import Dependency
from repro.engine.delta import Changeset, DeltaEngine
from repro.errors import ReproError
from repro.relational.instance import DatabaseInstance

__all__ = ["StreamConfig", "BatchResult", "StreamReport", "stream_edits", "run_stream"]


class StreamConfig:
    """Knobs for the edit stream."""

    def __init__(
        self,
        n_batches: int = 10,
        batch_size: int = 100,
        seed: int = 7,
        insert_weight: float = 1.0,
        delete_weight: float = 1.0,
        update_weight: float = 2.0,
    ):
        if n_batches < 1 or batch_size < 1:
            raise ValueError("stream needs at least one batch of one edit")
        self.n_batches = n_batches
        self.batch_size = batch_size
        self.seed = seed
        self.weights = (insert_weight, delete_weight, update_weight)


def _fresh_row(relation, rng: random.Random) -> List:
    """A new row assembled from per-attribute active domains.

    Cross-combining attribute values from different live tuples yields rows
    that are domain-valid but can break any dependency — the realistic
    shape of dirty inserts.
    """
    row = []
    for attr in relation.schema.attribute_names:
        pool = relation.active_domain(attr)
        row.append(rng.choice(pool) if pool else relation.schema.domain(attr).fresh_value())
    return row


def stream_edits(
    db: DatabaseInstance, config: StreamConfig
) -> Iterator[Changeset]:
    """Yield ``config.n_batches`` changesets against the *live* ``db``.

    Lazy by design: each batch is built from the instance as it stands when
    the batch is requested, so apply each yielded changeset before pulling
    the next.  Tuples already targeted within a batch are not targeted
    again (a batch never updates a tuple it just deleted): the live-tuple
    pool is materialized once per relation per batch and victims are
    popped from it, so generation costs O(|relation|) per batch, not per
    edit.
    """
    rng = random.Random(config.seed)
    kinds = ("insert", "delete", "update")
    relations = [rel.schema.name for rel in db if len(rel.schema) > 0]
    if not relations:
        raise ReproError("stream workload needs at least one relation")
    for _ in range(config.n_batches):
        batch = Changeset()
        pools: Dict[str, list] = {}
        for _ in range(config.batch_size):
            name = rng.choice(relations)
            relation = db.relation(name)
            pool = pools.get(name)
            if pool is None:
                pool = pools[name] = relation.tuples()
            kind = rng.choices(kinds, weights=config.weights)[0]
            if kind == "insert" or not pool:
                batch.insert(name, _fresh_row(relation, rng))
            elif kind == "delete":
                batch.delete(name, pool.pop(rng.randrange(len(pool))))
            else:
                victim = pool.pop(rng.randrange(len(pool)))
                attr = rng.choice(list(relation.schema.attribute_names))
                batch.update(
                    name,
                    victim,
                    **{attr: rng.choice(relation.active_domain(attr))},
                )
        yield batch


class BatchResult:
    """What one applied batch did, and how long maintenance took."""

    __slots__ = ("index", "edits", "added", "removed", "total", "seconds")

    def __init__(
        self, index: int, edits: int, added: int, removed: int, total: int, seconds: float
    ):
        self.index = index
        self.edits = edits
        self.added = added
        self.removed = removed
        self.total = total
        self.seconds = seconds

    def __repr__(self) -> str:
        return (
            f"BatchResult(#{self.index}: {self.edits} edits, "
            f"+{self.added} -{self.removed} violations, {self.total} total, "
            f"{self.seconds * 1e3:.2f} ms)"
        )


class StreamReport:
    """Aggregated outcome of a streamed run."""

    def __init__(self, batches: List[BatchResult], verified: bool):
        self.batches = batches
        #: True iff every batch was cross-checked against full re-detection
        self.verified = verified

    @property
    def total_edits(self) -> int:
        return sum(b.edits for b in self.batches)

    @property
    def total_seconds(self) -> float:
        return sum(b.seconds for b in self.batches)

    @property
    def final_violations(self) -> int:
        return self.batches[-1].total if self.batches else 0

    def summary(self) -> str:
        return (
            f"{len(self.batches)} batches, {self.total_edits} edits, "
            f"{self.final_violations} violations now live, "
            f"{self.total_seconds * 1e3:.2f} ms maintenance"
            + (", verified against full re-detection" if self.verified else "")
        )

    def __repr__(self) -> str:
        return f"StreamReport({self.summary()})"


def run_stream(
    db: DatabaseInstance,
    dependencies: Sequence[Dependency],
    config: StreamConfig | None = None,
    engine: Optional[DeltaEngine] = None,
    verify: bool = False,
) -> StreamReport:
    """Feed the edit stream through the delta engine, batch by batch.

    Deprecated shim: the loop lives in :meth:`repro.session.Session.stream`
    now; this free function wraps the instance (and an optional live
    engine) in a session and delegates.  With ``verify=True`` every batch
    is followed by a full indexed re-detection and the multisets are
    compared — the runtime analogue of the differential test harness
    (raises ``ReproError`` on divergence).
    """
    from repro.session import Session

    session = Session.from_instance(db, dependencies, engine=engine)
    return session.stream(config or StreamConfig(), verify=verify)
