"""Error-injection primitives for the synthetic workloads.

The experimental papers behind this survey ([36, 20, 38]) evaluate on
proprietary telecom/retail data with "1%–5%" error rates [65]; our
generators substitute seeded synthetic data and inject errors with these
primitives, recording exactly what was corrupted so detection/repair
recall can be measured against ground truth.
"""

from __future__ import annotations

import random
import string
from typing import Any, Sequence

__all__ = [
    "typo",
    "truncate",
    "abbreviate_name",
    "address_variant",
    "pick_other",
    "InjectedError",
]

_LETTERS = string.ascii_lowercase


def typo(value: str, rng: random.Random) -> str:
    """One character-level edit: substitute, delete, insert, or transpose."""
    if not value:
        return rng.choice(_LETTERS)
    kind = rng.choice(("substitute", "delete", "insert", "transpose"))
    position = rng.randrange(len(value))
    if kind == "substitute":
        replacement = rng.choice(_LETTERS)
        return value[:position] + replacement + value[position + 1 :]
    if kind == "delete" and len(value) > 1:
        return value[:position] + value[position + 1 :]
    if kind == "transpose" and len(value) > 1:
        position = min(position, len(value) - 2)
        return (
            value[:position]
            + value[position + 1]
            + value[position]
            + value[position + 2 :]
        )
    return value[:position] + rng.choice(_LETTERS) + value[position:]


def truncate(value: str, rng: random.Random, min_keep: int = 3) -> str:
    """Drop the tail of a string (keeps at least ``min_keep`` characters)."""
    if len(value) <= min_keep:
        return value
    keep = rng.randrange(min_keep, len(value))
    return value[:keep]


def abbreviate_name(name: str) -> str:
    """"John Smith" → "J. Smith" — the §3.1 representation variation."""
    parts = name.split()
    if len(parts) < 2 or len(parts[0]) < 2:
        return name
    return f"{parts[0][0]}. {' '.join(parts[1:])}"


_ADDRESS_SUBS = [
    ("Street", "St."),
    ("Avenue", "Ave"),
    ("Road", "Rd"),
    ("Drive", "Dr"),
    ("Mountain", "Mtn"),
    ("North", "N."),
    ("South", "S."),
]


def address_variant(address: str, rng: random.Random) -> str:
    """Rewrite an address with common abbreviations (same place, different
    string — the object-identification headache)."""
    variant = address
    for long_form, short_form in _ADDRESS_SUBS:
        if long_form in variant and rng.random() < 0.8:
            variant = variant.replace(long_form, short_form)
    if variant == address and " " in address:
        # at least flip token order so the variant differs
        tokens = address.split()
        variant = " ".join(tokens[1:] + tokens[:1])
    return variant


def pick_other(current: Any, pool: Sequence[Any], rng: random.Random) -> Any:
    """A value from ``pool`` different from ``current`` (ValueError if
    impossible)."""
    alternatives = [v for v in pool if v != current]
    if not alternatives:
        raise ValueError("pool has no alternative value")
    return rng.choice(alternatives)


class InjectedError:
    """Ground-truth record of one corrupted cell."""

    __slots__ = ("relation", "row_index", "attribute", "clean", "dirty")

    def __init__(
        self, relation: str, row_index: int, attribute: str, clean: Any, dirty: Any
    ):
        self.relation = relation
        self.row_index = row_index
        self.attribute = attribute
        self.clean = clean
        self.dirty = dirty

    def __repr__(self) -> str:
        return (
            f"InjectedError({self.relation}[{self.row_index}].{self.attribute}: "
            f"{self.clean!r} → {self.dirty!r})"
        )
