"""Seeded synthetic workloads with ground-truth error injection — the
substitution for the proprietary datasets of the cited experiments."""

from repro.workloads.card_billing import (
    CardBillingConfig,
    CardBillingWorkload,
    generate_card_billing,
)
from repro.workloads.customer import (
    CustomerConfig,
    CustomerWorkload,
    generate_customers,
)
from repro.workloads.noise import (
    InjectedError,
    abbreviate_name,
    address_variant,
    pick_other,
    truncate,
    typo,
)
from repro.workloads.orders import OrdersConfig, OrdersWorkload, generate_orders
from repro.workloads.stream import (
    BatchResult,
    StreamConfig,
    StreamReport,
    run_stream,
    stream_edits,
)

__all__ = [
    "BatchResult",
    "CardBillingConfig",
    "CardBillingWorkload",
    "CustomerConfig",
    "CustomerWorkload",
    "InjectedError",
    "OrdersConfig",
    "OrdersWorkload",
    "StreamConfig",
    "StreamReport",
    "abbreviate_name",
    "address_variant",
    "generate_card_billing",
    "generate_customers",
    "generate_orders",
    "pick_other",
    "run_stream",
    "stream_edits",
    "truncate",
    "typo",
]
