"""Seeded synthetic workloads with ground-truth error injection — the
substitution for the proprietary datasets of the cited experiments."""

from repro.workloads.card_billing import (
    CardBillingConfig,
    CardBillingWorkload,
    generate_card_billing,
)
from repro.workloads.customer import (
    CustomerConfig,
    CustomerWorkload,
    generate_customers,
)
from repro.workloads.noise import (
    InjectedError,
    abbreviate_name,
    address_variant,
    pick_other,
    truncate,
    typo,
)
from repro.workloads.orders import OrdersConfig, OrdersWorkload, generate_orders
from repro.workloads.soak import (
    InProcessServer,
    ServerProcess,
    SoakConfig,
    SoakReport,
    run_soak,
    smoke_config,
)
from repro.workloads.stream import (
    BatchResult,
    StreamConfig,
    StreamReport,
    run_stream,
    stream_edits,
)
from repro.workloads.tenants import TenantSpec, make_tenants, zipf_weights

__all__ = [
    "BatchResult",
    "CardBillingConfig",
    "CardBillingWorkload",
    "CustomerConfig",
    "CustomerWorkload",
    "InProcessServer",
    "InjectedError",
    "OrdersConfig",
    "OrdersWorkload",
    "ServerProcess",
    "SoakConfig",
    "SoakReport",
    "StreamConfig",
    "StreamReport",
    "TenantSpec",
    "abbreviate_name",
    "address_variant",
    "generate_card_billing",
    "generate_customers",
    "generate_orders",
    "make_tenants",
    "pick_other",
    "run_soak",
    "run_stream",
    "smoke_config",
    "stream_edits",
    "truncate",
    "typo",
    "zipf_weights",
]
