"""Multi-tenant soak harness with live byte-verification.

The missing workload (ROADMAP item 5): hundreds of named sessions driven
over *real HTTP* with Zipf-skewed popularity, bursty edit batches riding
:mod:`repro.workloads.stream`, adversarial corpus-style rule sets
(:mod:`repro.workloads.tenants`), mixed verbs (detect / apply / undo /
repair / rules round-trips), LRU eviction pressure from a small
``--max-sessions``, and optional SIGKILL crash/restart cycles against a
durable ``--state-dir`` server.

The soak is a *correctness instrument*, not just a load generator: every
tenant keeps an offline shadow :class:`~repro.session.Session` mutated in
lock-step with the server, plus a replayable edit history.  An online
verifier thread replays sampled histories through a fresh offline
session and byte-compares the served detect document against the offline
one (the canonical ``json.dumps(..., indent=2, default=str)`` encoding —
the exact bytes both the server and the CLI emit); a final pass verifies
*every* tenant.  Any divergence aborts the run and is minimized to the
first history step where a fresh served session and the offline replay
disagree — the reproducer (tenant id, batch index, changeset document)
is written out for a bug report.

Three server arrangements:

* :class:`ServerProcess` — ``repro serve`` in a child process; crash
  cycles are real ``SIGKILL`` + restart on the same state dir (the CLI
  path, ``repro soak``);
* :class:`InProcessServer` — ``make_server`` in this process with a
  crash-*like* hard restart (journals closed without a flush, so
  recovery replays the WAL tail) — what the tier-1 tests use;
* :class:`ExternalServer` — any ``--url``; no restarts.
"""

from __future__ import annotations

import json
import os
import queue
import random
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.client import ServerClient, ServerError
from repro.engine.delta import Changeset
from repro.errors import ReproError
from repro.workloads.stream import StreamConfig, stream_edits
from repro.workloads.tenants import (
    TenantSpec,
    make_tenants,
    random_rule_documents,
    zipf_weights,
)

__all__ = [
    "SoakConfig",
    "SoakReport",
    "ServerProcess",
    "InProcessServer",
    "ExternalServer",
    "run_soak",
    "run_from_args",
    "smoke_config",
    "canonical",
]

#: history entry: ("apply", changeset_doc) or ("rules", docs, replace)
HistoryEntry = Tuple[Any, ...]


def canonical(document: Any) -> str:
    """The byte encoding compared end-to-end.

    This is exactly how the server serializes response bodies and how
    the CLI prints ``--format json`` — comparing these strings compares
    the wire bytes modulo the trailing newline."""
    return json.dumps(document, indent=2, default=str)


class SoakConfig:
    """Knobs for one soak run (all deterministic given ``seed``)."""

    def __init__(
        self,
        tenants: int = 200,
        ops: int = 4000,
        seed: int = 11,
        workers: int = 8,
        zipf_exponent: float = 1.1,
        batch_max: int = 8,
        burst_size: int = 32,
        burst_probability: float = 0.08,
        verify_every: int = 25,
        max_rules: int = 10,
        max_undo_stash: int = 4,
        restarts: int = 1,
        max_sessions: int = 48,
        snapshot_every: int = 16,
        degraded_after: int = 5,
    ) -> None:
        if tenants < 1 or ops < 1 or workers < 1:
            raise ReproError("soak needs >= 1 tenant, op and worker")
        self.tenants = tenants
        self.ops = ops
        self.seed = seed
        self.workers = min(workers, tenants)
        self.zipf_exponent = zipf_exponent
        self.batch_max = max(1, batch_max)
        self.burst_size = max(1, burst_size)
        self.burst_probability = burst_probability
        self.verify_every = max(1, verify_every)
        self.max_rules = max_rules
        self.max_undo_stash = max(1, max_undo_stash)
        self.restarts = max(0, restarts)
        self.max_sessions = max_sessions
        self.snapshot_every = snapshot_every
        self.degraded_after = degraded_after

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tenants": self.tenants,
            "ops": self.ops,
            "seed": self.seed,
            "workers": self.workers,
            "zipf_exponent": self.zipf_exponent,
            "batch_max": self.batch_max,
            "burst_size": self.burst_size,
            "burst_probability": self.burst_probability,
            "verify_every": self.verify_every,
            "max_rules": self.max_rules,
            "max_undo_stash": self.max_undo_stash,
            "restarts": self.restarts,
            "max_sessions": self.max_sessions,
            "snapshot_every": self.snapshot_every,
            "degraded_after": self.degraded_after,
        }


def smoke_config(seed: int = 20260807) -> SoakConfig:
    """The CI smoke preset: ~30s, one crash/restart cycle, heavy
    eviction-rehydration churn (16 tenants through 6 resident slots)."""
    return SoakConfig(
        tenants=16,
        ops=320,
        seed=seed,
        workers=4,
        batch_max=6,
        burst_size=24,
        verify_every=12,
        restarts=1,
        max_sessions=6,
        snapshot_every=8,
    )


class SoakReport:
    """What the soak did and whether served == offline everywhere."""

    def __init__(self, config: SoakConfig) -> None:
        self.config = config
        self.counters: Dict[str, int] = {}
        self.divergence: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None
        self.elapsed_seconds = 0.0

    @property
    def ok(self) -> bool:
        return self.divergence is None and self.error is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "config": self.config.to_dict(),
            "counters": dict(sorted(self.counters.items())),
            "elapsed_seconds": self.elapsed_seconds,
            "divergence": self.divergence,
            "error": self.error,
        }

    def summary(self) -> str:
        verbs = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.counters.items())
            if count
        )
        status = "OK" if self.ok else (
            "DIVERGENCE" if self.divergence is not None else "ERROR"
        )
        lines = [
            f"soak {status}: {self.config.tenants} tenants, "
            f"{self.counters.get('ops', 0)} ops in "
            f"{self.elapsed_seconds:.1f}s",
            f"  {verbs}",
        ]
        if self.divergence is not None:
            lines.append(
                f"  first divergence: tenant "
                f"{self.divergence.get('tenant')!r} at history step "
                f"{self.divergence.get('step')}"
            )
        if self.error is not None:
            lines.append(f"  error: {self.error}")
        return "\n".join(lines)


# --------------------------------------------------------------------------
# Server arrangements
# --------------------------------------------------------------------------


def _free_port() -> int:
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind(("127.0.0.1", 0))
        return int(sock.getsockname()[1])


class ServerProcess:
    """``repro serve`` in a child process, SIGKILL-able for crash cycles."""

    def __init__(
        self,
        state_dir: Optional[Path],
        max_sessions: int,
        snapshot_every: int = 16,
        degraded_after: int = 5,
        port: Optional[int] = None,
    ) -> None:
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.max_sessions = max_sessions
        self.snapshot_every = snapshot_every
        self.degraded_after = degraded_after
        self.port = port if port is not None else _free_port()
        self.process: Optional[subprocess.Popen[bytes]] = None

    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> None:
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            str(self.port),
            "--max-sessions",
            str(self.max_sessions),
            "--degraded-after",
            str(self.degraded_after),
            "--quiet",
        ]
        if self.state_dir is not None:
            command += [
                "--state-dir",
                str(self.state_dir),
                "--snapshot-every",
                str(self.snapshot_every),
            ]
        env = dict(os.environ)
        import repro

        src_root = str(Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = (
            src_root + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_root
        )
        self.process = subprocess.Popen(command, env=env)
        ServerClient(base_url=self.base_url).wait_ready(
            attempts=200, delay=0.1
        )

    def restart(self) -> None:
        """A crash cycle: SIGKILL, then reboot on the same port/state."""
        process = self.process
        if process is not None:
            process.kill()
            process.wait(timeout=30)
        self.start()

    def close(self) -> None:
        process = self.process
        self.process = None
        if process is None or process.poll() is not None:
            return
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait(timeout=10)


class InProcessServer:
    """A ``make_server`` instance with a crash-*like* hard restart.

    The restart stops the listener and closes every journal *without*
    flushing a snapshot, so recovery exercises the WAL-tail replay path
    — the closest to SIGKILL an in-process arrangement can get (every
    acknowledged write is already fsync'd, exactly as after a crash)."""

    def __init__(self, **make_server_kwargs: Any) -> None:
        from repro.server import make_server

        self._make_server = make_server
        self._kwargs = dict(make_server_kwargs)
        self._kwargs.setdefault("port", 0)
        self._server = make_server(**self._kwargs)
        self._server.start_background()
        # pin the ephemeral port so restarts come back at the same URL
        self._kwargs["port"] = self._server.server_address[1]

    @property
    def base_url(self) -> str:
        return self._server.base_url

    @property
    def server(self) -> Any:
        return self._server

    def start(self) -> None:  # symmetry with ServerProcess
        pass

    def restart(self) -> None:
        self._hard_stop()
        self._server = self._make_server(**self._kwargs)
        self._server.start_background()
        ServerClient(base_url=self.base_url).wait_ready(
            attempts=100, delay=0.05
        )

    def _hard_stop(self) -> None:
        from http.server import ThreadingHTTPServer

        server = self._server
        ThreadingHTTPServer.shutdown(server)
        thread = getattr(server, "_thread", None)
        if thread is not None:
            thread.join(timeout=10)
        for hosted in server.manager.list():
            if hosted.journal is not None:
                hosted.journal.close()  # no snapshot: leave the WAL tail
            hosted.session.close()
        server.server_close()

    def close(self) -> None:
        self._server.shutdown()


class ExternalServer:
    """An already-running server by URL; restarts are unavailable."""

    def __init__(self, base_url: str) -> None:
        self.base_url = base_url.rstrip("/")

    def start(self) -> None:
        pass

    def restart(self) -> None:
        raise ReproError(
            "cannot crash/restart an external --url server; "
            "run with --restarts 0"
        )

    def close(self) -> None:
        pass


# --------------------------------------------------------------------------
# Offline replay (the verifier's ground truth)
# --------------------------------------------------------------------------


def replay_session(spec: TenantSpec, history: List[HistoryEntry]) -> Any:
    """Build a fresh offline session and replay ``history`` through it."""
    from repro.rules_json import rules_from_list

    session = spec.build_session()
    for entry in history:
        if entry[0] == "apply":
            session.apply(Changeset.from_dict(entry[1]))
        elif entry[0] == "rules":
            parsed = rules_from_list(entry[1], session.schema)
            if entry[2]:
                session.replace_rules(parsed)
            else:
                session.add_rules(*parsed)
        else:  # pragma: no cover - history entries come from this module
            raise ReproError(f"unknown history entry kind {entry[0]!r}")
    return session


def replay_detect(
    spec: TenantSpec, history: List[HistoryEntry]
) -> Dict[str, Any]:
    session = replay_session(spec, history)
    try:
        return session.detect().to_dict()  # type: ignore[no-any-return]
    finally:
        session.close()


# --------------------------------------------------------------------------
# Shared run state
# --------------------------------------------------------------------------


class TenantRuntime:
    """One tenant's live state: shadow session, history, undo stash."""

    __slots__ = (
        "spec",
        "shadow",
        "history",
        "undo_stash",
        "rng",
        "since_verify",
    )

    def __init__(self, spec: TenantSpec) -> None:
        self.spec = spec
        self.shadow = spec.build_session()
        self.history: List[HistoryEntry] = []
        #: recent (server token, shadow undo changeset) pairs, LIFO-popped
        #: so a popped token is always within the server's 32-token window
        self.undo_stash: List[Tuple[str, Changeset]] = []
        self.rng = random.Random(spec.seed ^ 0x5F5E1)
        self.since_verify = 0


class _RunContext:
    """Cross-thread coordination: counters, the verify queue, abort."""

    def __init__(self, config: SoakConfig, client: ServerClient) -> None:
        self.config = config
        self.client = client
        self.abort = threading.Event()
        self.queue: "queue.Queue[Optional[Tuple[TenantRuntime, List[HistoryEntry], Dict[str, Any]]]]" = queue.Queue(
            maxsize=32
        )
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {}
        self.divergence: Optional[Dict[str, Any]] = None
        self.error: Optional[str] = None

    def count(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def fail(self, message: str) -> None:
        with self._lock:
            if self.error is None:
                self.error = message
        self.abort.set()

    def record_divergence(self, report: Dict[str, Any]) -> None:
        with self._lock:
            if self.divergence is None:
                self.divergence = report
        self.abort.set()


def _minimize_divergence(
    client: ServerClient,
    runtime: TenantRuntime,
    history: List[HistoryEntry],
    served: Dict[str, Any],
    expected: Dict[str, Any],
) -> Dict[str, Any]:
    """Find the first history step where a *fresh* served session and the
    offline replay disagree; fall back to the endpoint-level divergence
    when the replay alone does not reproduce it (state the long-lived
    session accumulated outside its history — itself a server bug)."""
    spec = runtime.spec
    report: Dict[str, Any] = {
        "tenant": spec.tenant_id,
        "tenant_seed": spec.seed,
        "step": len(history),
        "history_length": len(history),
        "served_detect": served,
        "expected_detect": expected,
        "entry": None,
        "minimized": False,
    }
    min_id = f"{spec.tenant_id}-minimize"
    session = None
    try:
        from repro.rules_json import rules_from_list

        try:
            client.delete_session(min_id)
        except ServerError:
            pass
        client.create_session(
            schema=spec.schema_doc,
            rules=spec.rules_docs,
            data=spec.data,
            session_id=min_id,
        )
        session = spec.build_session()
        steps: List[Optional[HistoryEntry]] = [None]
        steps.extend(history)
        for index, entry in enumerate(steps):
            if entry is not None:
                if entry[0] == "apply":
                    client.apply(min_id, entry[1])
                    session.apply(Changeset.from_dict(entry[1]))
                else:
                    parsed = rules_from_list(entry[1], session.schema)
                    if entry[2]:
                        client.set_rules(min_id, entry[1])
                        session.replace_rules(parsed)
                    else:
                        client.add_rules(min_id, entry[1])
                        session.add_rules(*parsed)
            fresh_served = client.detect(min_id)
            fresh_expected = session.detect().to_dict()
            if canonical(fresh_served) != canonical(fresh_expected):
                report.update(
                    {
                        "step": index,
                        "entry": entry,
                        "served_detect": fresh_served,
                        "expected_detect": fresh_expected,
                        "minimized": True,
                    }
                )
                break
        client.delete_session(min_id)
    except (ServerError, ReproError) as exc:
        report["minimizer_error"] = str(exc)
    finally:
        if session is not None:
            session.close()
    return report


def _verifier(ctx: _RunContext) -> None:
    """Consume checkpoints; byte-compare served detect vs offline replay."""
    while True:
        item = ctx.queue.get()
        if item is None:
            return
        if ctx.abort.is_set():
            continue  # drain without working; the run is over
        runtime, history, served = item
        try:
            expected = replay_detect(runtime.spec, history)
        except ReproError as exc:
            ctx.fail(f"offline replay failed for {runtime.spec.tenant_id}: {exc}")
            continue
        ctx.count("verifications")
        if canonical(served) != canonical(expected):
            ctx.record_divergence(
                _minimize_divergence(
                    ctx.client, runtime, history, served, expected
                )
            )


# --------------------------------------------------------------------------
# The driver
# --------------------------------------------------------------------------

#: verbs and their traffic mix (cumulative sampling per op)
_VERB_WEIGHTS = (
    ("apply", 0.50),
    ("detect", 0.22),
    ("undo", 0.10),
    ("rules", 0.10),
    ("repair", 0.08),
)


class _Driver(threading.Thread):
    """One worker: Zipf-picks among its owned tenants, issues mixed verbs."""

    def __init__(
        self,
        worker_id: int,
        tenants: List[TenantRuntime],
        ctx: _RunContext,
        ops: int,
    ) -> None:
        super().__init__(name=f"soak-driver-{worker_id}", daemon=True)
        self.worker_id = worker_id
        self.tenants = tenants
        self.ctx = ctx
        self.ops = ops
        self.rng = random.Random((ctx.config.seed << 8) ^ worker_id)
        self.weights = zipf_weights(
            len(tenants), ctx.config.zipf_exponent
        )

    def run(self) -> None:
        try:
            for _ in range(self.ops):
                if self.ctx.abort.is_set():
                    return
                tenant = self.rng.choices(
                    self.tenants, weights=self.weights
                )[0]
                self._one_op(tenant)
                self.ctx.count("ops")
        except Exception as exc:  # noqa: BLE001 - boundary: fail the run
            self.ctx.fail(
                f"driver {self.worker_id} aborted: {type(exc).__name__}: "
                f"{exc}"
            )

    # -- op selection ----------------------------------------------------

    def _one_op(self, tenant: TenantRuntime) -> None:
        roll = self.rng.random() * sum(w for _, w in _VERB_WEIGHTS)
        for verb, weight in _VERB_WEIGHTS:
            roll -= weight
            if roll <= 0:
                break
        if verb == "apply":
            self._op_apply(tenant)
        elif verb == "detect":
            self._op_detect(tenant)
        elif verb == "undo":
            self._op_undo(tenant)
        elif verb == "rules":
            self._op_rules(tenant)
        else:
            self._op_repair(tenant)
        tenant.since_verify += 1
        if tenant.since_verify >= self.ctx.config.verify_every:
            self._checkpoint(tenant)

    # -- session resilience ----------------------------------------------

    def _recreate(self, tenant: TenantRuntime) -> None:
        """Rebuild an evicted (non-durable) session from the shadow's
        *current* state — byte-equivalent to replaying the history, since
        ``data_documents`` preserves live insertion order."""
        try:
            self.ctx.client.create_session(
                schema=tenant.spec.schema_doc,
                rules=tenant.shadow.rules_documents(),
                data=tenant.shadow.data_documents(),
                session_id=tenant.spec.tenant_id,
            )
        except ServerError as exc:
            if exc.status != 409:
                raise
            # someone (a rehydration, another driver op) beat us to it
        tenant.undo_stash.clear()  # server-side tokens died with the state
        self.ctx.count("evictions_rebuilt")

    def _call(
        self,
        tenant: TenantRuntime,
        fn: Callable[[], Dict[str, Any]],
        idempotent: bool,
    ) -> Dict[str, Any]:
        """Run one client call with 404-recreate and bounded 503 retries.

        A 503 means the degraded gate rejected the verb *before* any
        mutation, so retrying is always safe; raw transport failures are
        only retried for idempotent verbs (a lost response to an apply
        would leave the commit state unknowable)."""
        for attempt in range(8):
            try:
                return fn()
            except ServerError as exc:
                if exc.status == 404:
                    self._recreate(tenant)
                    continue
                if exc.status == 503 or (exc.retriable and idempotent):
                    self.ctx.count("retries")
                    time.sleep(0.05 * (attempt + 1))
                    continue
                raise
        raise ReproError(
            f"tenant {tenant.spec.tenant_id}: verb kept failing after "
            "8 attempts (degraded or unreachable)"
        )

    # -- verbs -----------------------------------------------------------

    def _op_apply(self, tenant: TenantRuntime) -> None:
        config = self.ctx.config
        if tenant.rng.random() < config.burst_probability:
            size = config.burst_size
            self.ctx.count("bursts")
        else:
            size = tenant.rng.randrange(1, config.batch_max + 1)
        stream = stream_edits(
            tenant.shadow.database,
            StreamConfig(
                n_batches=1,
                batch_size=size,
                seed=tenant.rng.randrange(1 << 30),
            ),
        )
        changeset = next(stream)
        if len(changeset) == 0:
            return
        doc = changeset.to_dict()
        delta = self._call(
            tenant,
            lambda: self.ctx.client.apply(tenant.spec.tenant_id, doc),
            idempotent=False,
        )
        shadow_delta = tenant.shadow.apply(changeset)
        tenant.history.append(("apply", doc))
        tenant.undo_stash.append((delta["undo_token"], shadow_delta.undo))
        while len(tenant.undo_stash) > config.max_undo_stash:
            tenant.undo_stash.pop(0)
        self.ctx.count("applies")
        self.ctx.count("applied_ops", len(changeset))

    def _op_detect(self, tenant: TenantRuntime) -> None:
        include = tenant.rng.random() < 0.5
        self._call(
            tenant,
            lambda: self.ctx.client.detect(
                tenant.spec.tenant_id, include_violations=include
            ),
            idempotent=True,
        )
        self.ctx.count("detects")

    def _op_undo(self, tenant: TenantRuntime) -> None:
        if not tenant.undo_stash:
            return
        token, undo_changeset = tenant.undo_stash.pop()
        try:
            self.ctx.client.undo(tenant.spec.tenant_id, token)
        except ServerError as exc:
            if exc.status == 404:
                # evicted non-durable session: nothing was undone
                self._recreate(tenant)
                return
            if exc.status == 400:
                # token fell off the server's 32-token window (or died
                # with an eviction rebuild that raced this pop)
                self.ctx.count("undo_misses")
                return
            raise
        # the server replayed its stored inverse; the shadow applies its
        # own — both are the delta engine's inverse of the same state
        tenant.shadow.apply(undo_changeset)
        tenant.history.append(("apply", undo_changeset.to_dict()))
        self.ctx.count("undos")

    def _op_rules(self, tenant: TenantRuntime) -> None:
        client = self.ctx.client
        if (
            tenant.rng.random() < 0.5
            or len(tenant.spec.rules_docs) >= self.ctx.config.max_rules
        ):
            served = self._call(
                tenant,
                lambda: {"rules": client.get_rules(tenant.spec.tenant_id)},
                idempotent=True,
            )["rules"]
            expected = tenant.shadow.rules_documents()
            self.ctx.count("rules_reads")
            if canonical(served) != canonical(expected):
                self.ctx.record_divergence(
                    {
                        "tenant": tenant.spec.tenant_id,
                        "kind": "rules-roundtrip",
                        "step": len(tenant.history),
                        "served_rules": served,
                        "expected_rules": expected,
                    }
                )
            return
        if len(tenant.shadow.rules) >= self.ctx.config.max_rules:
            return
        docs = random_rule_documents(tenant.spec, tenant.rng)
        from repro.rules_json import rules_from_list

        self._call(
            tenant,
            lambda: client.add_rules(tenant.spec.tenant_id, docs),
            idempotent=False,
        )
        tenant.shadow.add_rules(
            *rules_from_list(docs, tenant.shadow.schema)
        )
        tenant.history.append(("rules", docs, False))
        self.ctx.count("rules_appends")

    def _op_repair(self, tenant: TenantRuntime) -> None:
        strategy = tenant.rng.choice(("x", "x", "u"))
        try:
            self._call(
                tenant,
                lambda: self.ctx.client.repair(
                    tenant.spec.tenant_id,
                    strategy=strategy,
                    adopt=False,
                    limit=50000,
                ),
                idempotent=True,
            )
        except ServerError as exc:
            if exc.status == 400:
                # e.g. u-repair over a rule set with no FDs/CFDs
                self.ctx.count("repairs_rejected")
                return
            raise
        self.ctx.count("repairs")

    # -- verification ----------------------------------------------------

    def _checkpoint(self, tenant: TenantRuntime) -> None:
        """Full served detect + a history snapshot onto the verify queue."""
        tenant.since_verify = 0
        served = self._call(
            tenant,
            lambda: self.ctx.client.detect(tenant.spec.tenant_id),
            idempotent=True,
        )
        item = (tenant, list(tenant.history), served)
        while not self.ctx.abort.is_set():
            try:
                self.ctx.queue.put(item, timeout=0.5)
                self.ctx.count("checkpoints")
                return
            except queue.Full:
                continue  # backpressure: the verifier is behind


# --------------------------------------------------------------------------
# Orchestration
# --------------------------------------------------------------------------


def _final_verification(
    ctx: _RunContext, runtimes: List[TenantRuntime]
) -> None:
    """Byte-verify *every* tenant after the drivers quiesce."""
    for runtime in runtimes:
        if ctx.abort.is_set():
            return
        try:
            served = ctx.client.detect(runtime.spec.tenant_id)
        except ServerError as exc:
            if exc.status != 404:
                ctx.fail(
                    f"final detect failed for {runtime.spec.tenant_id}: "
                    f"{exc}"
                )
                return
            # non-durable eviction: rebuild from the shadow and verify
            # the rebuilt session instead (still a full replay check)
            ctx.client.create_session(
                schema=runtime.spec.schema_doc,
                rules=runtime.shadow.rules_documents(),
                data=runtime.shadow.data_documents(),
                session_id=runtime.spec.tenant_id,
            )
            ctx.count("evictions_rebuilt")
            served = ctx.client.detect(runtime.spec.tenant_id)
        expected = replay_detect(runtime.spec, runtime.history)
        ctx.count("final_verifications")
        if canonical(served) != canonical(expected):
            ctx.record_divergence(
                _minimize_divergence(
                    ctx.client,
                    runtime,
                    list(runtime.history),
                    served,
                    expected,
                )
            )
            return


def _write_artifacts(
    ctx: _RunContext,
    runtimes: List[TenantRuntime],
    report: SoakReport,
    artifacts_dir: Path,
) -> None:
    """Diagnostics exports, a Prometheus scrape and the run report."""
    artifacts_dir.mkdir(parents=True, exist_ok=True)
    try:
        (artifacts_dir / "metrics.json").write_text(
            canonical(ctx.client.metrics()) + "\n"
        )
        (artifacts_dir / "metrics.prom").write_text(
            ctx.client.prometheus_metrics()
        )
        diagnostics_dir = artifacts_dir / "diagnostics"
        diagnostics_dir.mkdir(exist_ok=True)
        for runtime in runtimes[:32]:  # the Zipf head carries the traffic
            try:
                doc = ctx.client.diagnostics(runtime.spec.tenant_id)
            except ServerError:
                continue  # evicted on a non-durable server
            (diagnostics_dir / f"{runtime.spec.tenant_id}.json").write_text(
                canonical(doc) + "\n"
            )
    except ServerError as exc:
        report.counters["artifact_errors"] = (
            report.counters.get("artifact_errors", 0) + 1
        )
        (artifacts_dir / "artifact-error.txt").write_text(f"{exc}\n")
    if report.divergence is not None:
        (artifacts_dir / "reproducer.json").write_text(
            canonical(report.divergence) + "\n"
        )
    (artifacts_dir / "report.json").write_text(
        canonical(report.to_dict()) + "\n"
    )


def run_soak(
    config: SoakConfig,
    server: Any,
    artifacts_dir: Optional[Path] = None,
    log: Optional[Callable[[str], None]] = None,
) -> SoakReport:
    """Drive one full soak against ``server`` (any arrangement above)."""

    def say(message: str) -> None:
        if log is not None:
            log(message)

    started = time.perf_counter()
    client = ServerClient(base_url=server.base_url, timeout=120.0)
    client.wait_ready(attempts=200)
    report = SoakReport(config)
    ctx = _RunContext(config, client)

    say(f"creating {config.tenants} tenants (seed {config.seed})")
    specs = make_tenants(config.tenants, config.seed)
    runtimes = [TenantRuntime(spec) for spec in specs]
    try:
        for runtime in runtimes:
            try:
                client.create_session(
                    **{
                        key: value
                        for key, value in runtime.spec.creation_document().items()
                        if key != "id"
                    },
                    session_id=runtime.spec.tenant_id,
                )
            except ServerError as exc:
                if exc.status != 409:
                    raise
                # durable state from an earlier run on the same state dir
            ctx.count("tenants_created")

        verifier = threading.Thread(
            target=_verifier, args=(ctx,), name="soak-verifier", daemon=True
        )
        verifier.start()

        phases = config.restarts + 1
        ops_per_phase = max(1, config.ops // phases)
        for phase in range(phases):
            if phase > 0 and not ctx.abort.is_set():
                say(f"crash/restart cycle {phase}/{config.restarts}")
                server.restart()
                client.wait_ready(attempts=200)
                ctx.count("restarts")
            if ctx.abort.is_set():
                break
            drivers = []
            per_worker = max(1, ops_per_phase // config.workers)
            for worker_id in range(config.workers):
                owned = runtimes[worker_id :: config.workers]
                if not owned:
                    continue
                drivers.append(_Driver(worker_id, owned, ctx, per_worker))
            say(
                f"phase {phase + 1}/{phases}: {len(drivers)} workers x "
                f"{per_worker} ops"
            )
            for driver in drivers:
                driver.start()
            for driver in drivers:
                driver.join()

        if not ctx.abort.is_set():
            say("final verification pass over every tenant")
            _final_verification(ctx, runtimes)

        ctx.queue.put(None)
        verifier.join(timeout=300)
    except (ServerError, ReproError) as exc:
        ctx.fail(str(exc))
        ctx.queue.put(None)
    finally:
        report.counters = dict(ctx.counters)
        report.divergence = ctx.divergence
        report.error = ctx.error
        report.elapsed_seconds = time.perf_counter() - started
        if artifacts_dir is not None:
            _write_artifacts(ctx, runtimes, report, artifacts_dir)
        for runtime in runtimes:
            runtime.shadow.close()
    say(report.summary())
    return report


# --------------------------------------------------------------------------
# CLI entry (``repro soak``)
# --------------------------------------------------------------------------


def run_from_args(args: Any) -> int:
    """Back end of the ``repro soak`` subcommand (argparse namespace in).

    Lives here rather than in ``repro.cli`` so the CLI module stays free
    of clock/randomness (the determinism checker's REP001 scope)."""
    if args.smoke:
        config = smoke_config(seed=args.seed if args.seed is not None else 20260807)
    else:
        config = SoakConfig(
            seed=args.seed if args.seed is not None else 11,
        )
    for knob in (
        "tenants",
        "ops",
        "workers",
        "restarts",
        "max_sessions",
        "verify_every",
        "degraded_after",
    ):
        value = getattr(args, knob, None)
        if value is not None:
            setattr(config, knob, value)
    config.workers = min(config.workers, config.tenants)

    artifacts_dir = Path(args.artifacts) if args.artifacts else None
    temp_state: Optional[tempfile.TemporaryDirectory[str]] = None
    try:
        if args.url:
            if config.restarts:
                print(
                    "soak: --url given; disabling crash/restart cycles",
                    file=sys.stderr,
                )
                config.restarts = 0
            server: Any = ExternalServer(args.url)
        else:
            if args.state_dir:
                state_dir: Optional[Path] = Path(args.state_dir)
            else:
                # durable by default: crash cycles and eviction-rehydration
                # are the whole point of the soak
                temp_state = tempfile.TemporaryDirectory(prefix="repro-soak-")
                state_dir = Path(temp_state.name)
            server = ServerProcess(
                state_dir=state_dir,
                max_sessions=config.max_sessions,
                snapshot_every=config.snapshot_every,
                degraded_after=config.degraded_after,
            )
        server.start()
        report = run_soak(
            config,
            server,
            artifacts_dir=artifacts_dir,
            log=lambda message: print(f"soak: {message}", file=sys.stderr),
        )
    finally:
        try:
            server.close()
        except UnboundLocalError:  # pragma: no cover - spawn failed early
            pass
        if temp_state is not None:
            temp_state.cleanup()
    print(report.summary())
    if report.divergence is not None:
        print(
            json.dumps(
                {
                    key: report.divergence.get(key)
                    for key in ("tenant", "step", "entry", "minimized")
                },
                indent=2,
                default=str,
            )
        )
        return 1
    return 0 if report.ok else 2
