"""Synthetic card/billing data for object identification (paper §3.1).

Generates a population of card holders and a billing relation referring to
the *same people* under varied representations — abbreviated first names
("John" → "J."), address abbreviations ("Street" → "St."), occasionally a
different email or phone — plus unrelated billing rows.  Ground-truth
match pairs are recorded, so the EXP-MATCH benchmark can measure the
precision/recall improvement from derived RCKs exactly as §4.2 claims.
"""

from __future__ import annotations

import random
from typing import Set, Tuple as PyTuple

from repro.paper import card_billing_schema
from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple
from repro.workloads.noise import abbreviate_name, address_variant

__all__ = ["CardBillingConfig", "CardBillingWorkload", "generate_card_billing"]

_FIRST = ["John", "Mary", "Wei", "Aisha", "Carlos", "Elena", "Raj", "Sofia",
          "Liam", "Noor", "Pedro", "Yuki", "Hana", "Omar", "Igor", "Lucia",
          "Tariq", "Mina", "Jonas", "Ruth"]
_LAST = ["Smith", "Jones", "Garcia", "Chen", "Patel", "Okafor", "Müller",
         "Rossi", "Khan", "Brown", "Silva", "Tanaka", "Novak", "Haddad",
         "Kim", "Costa", "Dubois", "Eze", "Larsen", "Moreau"]
_STREET_BASES = ["Mountain Avenue", "North Street", "Lake Road",
                 "South Drive", "Oak Avenue", "Elm Road", "River Street",
                 "Hill Road", "Park Avenue", "Bay Drive"]
_ITEMS = ["laptop", "phone", "desk", "lamp", "book", "camera"]


class CardBillingConfig:
    """Knobs for the card/billing generator."""

    def __init__(
        self,
        n_people: int = 200,
        billings_per_person: int = 2,
        unrelated_billing: int = 50,
        variation_rate: float = 0.6,
        phone_change_rate: float = 0.15,
        email_change_rate: float = 0.15,
        seed: int = 13,
    ):
        self.n_people = n_people
        self.billings_per_person = billings_per_person
        self.unrelated_billing = unrelated_billing
        self.variation_rate = variation_rate
        self.phone_change_rate = phone_change_rate
        self.email_change_rate = email_change_rate
        self.seed = seed


class CardBillingWorkload:
    """Instances plus the ground-truth match pairs (card tuple, billing tuple)."""

    def __init__(
        self,
        db: DatabaseInstance,
        truth: Set[PyTuple[Tuple, Tuple]],
        config: CardBillingConfig,
    ):
        self.db = db
        self.truth = truth
        self.config = config

    @property
    def card(self):
        return self.db.relation("card")

    @property
    def billing(self):
        return self.db.relation("billing")


def generate_card_billing(
    config: CardBillingConfig | None = None,
) -> CardBillingWorkload:
    """Seeded generator; returns instances plus ground-truth matches."""
    config = config or CardBillingConfig()
    rng = random.Random(config.seed)
    db = DatabaseInstance(card_billing_schema())
    card = db.relation("card")
    billing = db.relation("billing")
    truth: Set[PyTuple[Tuple, Tuple]] = set()

    for person in range(config.n_people):
        first = rng.choice(_FIRST)
        last = rng.choice(_LAST)
        addr = f"{rng.randrange(1, 999)} {rng.choice(_STREET_BASES)}"
        tel = f"+1-555-{person:04d}"
        email = f"{first.lower()}.{last.lower()}{person}@mail.example"
        card_tuple = card.add(
            {
                "cnum": f"C{person:05d}",
                "SSN": f"S{person:06d}",
                "FN": first,
                "LN": last,
                "addr": addr,
                "tel": tel,
                "email": email,
                "type": rng.choice(["visa", "master"]),
            }
        )
        for purchase in range(config.billings_per_person):
            fn = first
            post = addr
            phn = tel
            bill_email = email
            if rng.random() < config.variation_rate:
                fn = abbreviate_name(f"{first} x").split()[0]  # "J."
            if rng.random() < config.variation_rate:
                post = address_variant(addr, rng)
            if rng.random() < config.phone_change_rate:
                phn = f"+1-777-{person:04d}"  # new phone number
            if rng.random() < config.email_change_rate:
                bill_email = f"{first[0].lower()}{last.lower()}@other.example"
            billing_tuple = billing.add(
                {
                    "cnum": f"C{person:05d}",
                    "FN": fn,
                    "SN": last,
                    "post": post,
                    "phn": phn,
                    "email": bill_email,
                    "item": rng.choice(_ITEMS),
                    "price": round(10 + rng.random() * 500, 2),
                }
            )
            truth.add((card_tuple, billing_tuple))

    for extra in range(config.unrelated_billing):
        first = rng.choice(_FIRST)
        last = rng.choice(_LAST)
        billing.add(
            {
                "cnum": f"X{extra:05d}",
                "FN": first,
                "SN": last,
                "post": f"{rng.randrange(1, 999)} {rng.choice(_STREET_BASES)}",
                "phn": f"+1-999-{extra:04d}",
                "email": f"{first.lower()}{extra}@nowhere.example",
                "item": rng.choice(_ITEMS),
                "price": round(10 + rng.random() * 500, 2),
            }
        )
    return CardBillingWorkload(db, truth, config)
