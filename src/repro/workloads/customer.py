"""Synthetic customer data in the shape of the paper's running example.

Clean generation respects the semantic rules of §2.1 — in the UK (CC=44)
zip determines street, (CC, AC) determines city, city constants per area
code — then injects seeded cell-level errors.  Because phone numbers are
unique, the traditional FDs f1/f2 fire only when a corruption happens to
collide with another tuple, while the constant-pattern CFDs catch errors
tuple-locally: the workload realizes the paper's "none of the tuples in D0
is error-free yet D0 ⊨ {f1, f2}" phenomenon at scale (benchmark
EXP-DETECT).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple as PyTuple

from repro.cfd.model import CFD, UNNAMED, PatternTableau
from repro.deps.fd import FD
from repro.paper import customer_schema
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema
from repro.workloads.noise import InjectedError, pick_other, typo

__all__ = ["CustomerConfig", "CustomerWorkload", "generate_customers"]

#: (CC, AC) → city constants used by the clean generator and the CFDs
_AREA_CITIES: Dict[PyTuple[int, int], str] = {
    (44, 131): "EDI",
    (44, 20): "LDN",
    (44, 141): "GLA",
    (1, 908): "MH",
    (1, 212): "NYC",
    (1, 415): "SFO",
}

_FIRST_NAMES = [
    "Mike", "Rick", "Joe", "Anna", "Wei", "Sara", "Tom", "Lena", "Omar", "Ivy",
]

_STREETS = [
    "Mayfield", "Crichton", "Mtn Ave", "Princes St", "High St", "Main St",
    "Elm Rd", "Oak Ave", "Pine Dr", "Lake Rd",
]


class CustomerConfig:
    """Knobs for the generator."""

    def __init__(
        self,
        n_tuples: int = 1000,
        error_rate: float = 0.03,
        seed: int = 7,
        zips_per_city: int = 5,
    ):
        self.n_tuples = n_tuples
        self.error_rate = error_rate
        self.seed = seed
        self.zips_per_city = zips_per_city


class CustomerWorkload:
    """Generated data plus ground truth and the rule sets."""

    def __init__(
        self,
        db: DatabaseInstance,
        clean_db: DatabaseInstance,
        errors: List[InjectedError],
        config: CustomerConfig,
    ):
        self.db = db
        self.clean_db = clean_db
        self.errors = errors
        self.config = config

    def dirty_row_indices(self) -> set:
        return {e.row_index for e in self.errors}

    @staticmethod
    def fds() -> List[FD]:
        """The traditional FDs f1, f2 of §2.1."""
        return [
            FD("customer", ["CC", "AC", "phn"], ["street", "city", "zip"]),
            FD("customer", ["CC", "AC"], ["city"]),
        ]

    @staticmethod
    def cfds() -> List[CFD]:
        """The conditional rules: UK zip → street, plus city constants per
        (CC, AC) — the scaled-up ϕ1/ϕ2/ϕ3 of Figure 2."""
        zip_street = CFD(
            "customer",
            ["CC", "zip"],
            ["street"],
            PatternTableau(
                ("CC", "zip", "street"),
                [{"CC": 44, "zip": UNNAMED, "street": UNNAMED}],
            ),
            name="cfd-zip-street-UK",
        )
        city_rows = [
            {"CC": cc, "AC": ac, "phn": UNNAMED, "street": UNNAMED,
             "city": city, "zip": UNNAMED}
            for (cc, ac), city in sorted(_AREA_CITIES.items())
        ]
        area_city = CFD(
            "customer",
            ["CC", "AC", "phn"],
            ["street", "city", "zip"],
            PatternTableau(
                ("CC", "AC", "phn", "street", "city", "zip"),
                [{a: UNNAMED for a in ("CC", "AC", "phn", "street", "city", "zip")}]
                + city_rows,
            ),
            name="cfd-area-city",
        )
        plain_f2 = CFD(
            "customer",
            ["CC", "AC"],
            ["city"],
            PatternTableau(
                ("CC", "AC", "city"),
                [{"CC": UNNAMED, "AC": UNNAMED, "city": UNNAMED}],
            ),
            name="cfd-f2",
        )
        return [zip_street, area_city, plain_f2]


def _zip_code(cc: int, ac: int, index: int) -> str:
    return f"Z{cc}-{ac}-{index:03d}"


def generate_customers(config: CustomerConfig | None = None) -> CustomerWorkload:
    """Generate a seeded customer workload with injected errors."""
    config = config or CustomerConfig()
    rng = random.Random(config.seed)
    schema = customer_schema()
    db_schema = DatabaseSchema([schema])
    clean_db = DatabaseInstance(db_schema)
    clean_rel = clean_db.relation("customer")

    areas = sorted(_AREA_CITIES)
    # zip → street assignments (functional, per the UK rule; reused for the
    # US too — the *rule* just doesn't require it there)
    zip_street: Dict[str, str] = {}
    zips_by_area: Dict[PyTuple[int, int], List[str]] = {}
    for cc, ac in areas:
        codes = [
            _zip_code(cc, ac, i) for i in range(config.zips_per_city)
        ]
        zips_by_area[(cc, ac)] = codes
        for code in codes:
            zip_street[code] = rng.choice(_STREETS)

    rows: List[Dict[str, Any]] = []
    for i in range(config.n_tuples):
        cc, ac = areas[rng.randrange(len(areas))]
        zip_code = rng.choice(zips_by_area[(cc, ac)])
        rows.append(
            {
                "CC": cc,
                "AC": ac,
                "phn": 1_000_000 + i,  # unique phones: FDs stay silent
                "name": rng.choice(_FIRST_NAMES),
                "street": zip_street[zip_code],
                "city": _AREA_CITIES[(cc, ac)],
                "zip": zip_code,
            }
        )
    # Bulk-load through extend_rows: the columnar backend interns each
    # distinct value once instead of building a Tuple per generated row.
    names = clean_rel.schema.attribute_names
    clean_rel.extend_rows(tuple(row[a] for a in names) for row in rows)

    cities = sorted(set(_AREA_CITIES.values()))
    errors: List[InjectedError] = []
    dirty_rows = [dict(row) for row in rows]
    for index, row in enumerate(dirty_rows):
        if rng.random() >= config.error_rate:
            continue
        attribute = rng.choice(("city", "street", "zip"))
        clean_value = row[attribute]
        if attribute == "city":
            dirty_value = pick_other(clean_value, cities, rng)
        elif attribute == "street":
            dirty_value = typo(clean_value, rng)
        else:
            # a zip from another area of the same country: breaks zip→street
            other_areas = [a for a in areas if a[0] == row["CC"]]
            area = other_areas[rng.randrange(len(other_areas))]
            dirty_value = pick_other(
                clean_value,
                [z for z in zips_by_area[area]] + list(zip_street),
                rng,
            )
        row[attribute] = dirty_value
        errors.append(
            InjectedError("customer", index, attribute, clean_value, dirty_value)
        )

    db = DatabaseInstance(db_schema)
    rel = db.relation("customer")
    rel.extend_rows(tuple(row[a] for a in names) for row in dirty_rows)
    return CustomerWorkload(db, clean_db, errors, config)
