"""Synthetic order/book/CD data in the shape of Figure 3.

Clean generation satisfies the CINDs cind1–cind3 of §2.2 (every ordered
book exists in ``book``, every ordered CD in ``CD``, every audio-book CD
has an 'audio'-format book); injection then breaks them in controlled
ways: drop target rows, corrupt prices, or flip an audio-book's format —
the violations ϕ4–ϕ6 must catch (benchmark FIG3/FIG4 at scale).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from repro.cind.model import CIND
from repro.paper import fig4_cinds, source_target_schema
from repro.relational.instance import DatabaseInstance
from repro.workloads.noise import InjectedError

__all__ = ["OrdersConfig", "OrdersWorkload", "generate_orders"]

_TITLES = [
    "Snow White", "Harry Potter", "War and Peace", "Dune", "Emma",
    "Dracula", "Ulysses", "Beloved", "Middlemarch", "Persuasion",
]

_GENRES = ["country", "rock", "jazz", "classical", "a-book"]

_FORMATS = ["hard-cover", "paper-cover", "audio"]


class OrdersConfig:
    """Knobs for the order/book/CD generator."""

    def __init__(
        self,
        n_orders: int = 500,
        error_rate: float = 0.04,
        audio_book_share: float = 0.2,
        seed: int = 11,
    ):
        self.n_orders = n_orders
        self.error_rate = error_rate
        self.audio_book_share = audio_book_share
        self.seed = seed


class OrdersWorkload:
    """Generated data plus ground truth and the CIND rule set."""

    def __init__(
        self,
        db: DatabaseInstance,
        clean_db: DatabaseInstance,
        errors: List[InjectedError],
        config: OrdersConfig,
    ):
        self.db = db
        self.clean_db = clean_db
        self.errors = errors
        self.config = config

    @staticmethod
    def cinds() -> List[CIND]:
        """ϕ4, ϕ5, ϕ6 — the Figure 4 CINDs."""
        return list(fig4_cinds().values())


def generate_orders(config: OrdersConfig | None = None) -> OrdersWorkload:
    """Seeded order/book/CD generator with CIND-violating injections."""
    config = config or OrdersConfig()
    rng = random.Random(config.seed)
    schema = source_target_schema()
    clean = DatabaseInstance(schema)

    book_rows: List[Dict[str, Any]] = []
    cd_rows: List[Dict[str, Any]] = []
    order_rows: List[Dict[str, Any]] = []

    prices: Dict[str, float] = {
        title: round(5.0 + rng.random() * 25.0, 2) for title in _TITLES
    }
    for i, title in enumerate(_TITLES):
        book_rows.append(
            {
                "isbn": f"b{i:03d}",
                "title": title,
                "price": prices[title],
                "format": rng.choice(["hard-cover", "paper-cover"]),
            }
        )
    for i in range(config.n_orders):
        title = rng.choice(_TITLES)
        if rng.random() < 0.5:
            order_rows.append(
                {"asin": f"a{i:04d}", "title": title, "type": "book",
                 "price": prices[title]}
            )
        else:
            genre = (
                "a-book"
                if rng.random() < config.audio_book_share
                else rng.choice([g for g in _GENRES if g != "a-book"])
            )
            cd_price = round(prices[title] * 0.5, 2)
            cd_rows.append(
                {"id": f"c{i:04d}", "album": title, "price": cd_price,
                 "genre": genre}
            )
            order_rows.append(
                {"asin": f"a{i:04d}", "title": title, "type": "CD",
                 "price": cd_price}
            )
            if genre == "a-book":
                # cind3 witness: an audio-format book with the CD's price
                book_rows.append(
                    {"isbn": f"ab{i:04d}", "title": title, "price": cd_price,
                     "format": "audio"}
                )
    # every CD price needs a CD row for cind2: CD orders above already have
    # one; book orders reference book_rows directly — the clean instance
    # satisfies all three CINDs by construction.
    for row in book_rows:
        clean.relation("book").add(row)
    for row in cd_rows:
        clean.relation("CD").add(row)
    for row in order_rows:
        clean.relation("order").add(row)

    errors: List[InjectedError] = []
    dirty = clean.copy()
    # 1. corrupt order prices (breaks cind1/cind2 matching)
    for index, t in enumerate(list(dirty.relation("order"))):
        if rng.random() >= config.error_rate:
            continue
        old_price = t["price"]
        new_price = round(old_price + 1.0 + rng.random() * 3.0, 2)
        dirty.relation("order").discard(t)
        dirty.relation("order").add(t.replace(price=new_price))
        errors.append(
            InjectedError("order", index, "price", old_price, new_price)
        )
    # 2. flip audio-book formats (breaks cind3)
    for index, t in enumerate(list(dirty.relation("book"))):
        if t["format"] != "audio" or rng.random() >= config.error_rate * 2:
            continue
        dirty.relation("book").discard(t)
        dirty.relation("book").add(t.replace(format="paper-cover"))
        errors.append(
            InjectedError("book", index, "format", "audio", "paper-cover")
        )
    return OrdersWorkload(dirty, clean, errors, config)
