"""Denial constraints.

A denial constraint (paper Section 2.3) is a universally quantified sentence

    ∀ x̄1 ... x̄m ¬( R1(x̄1) ∧ ... ∧ Rm(x̄m) ∧ ϕ(x̄1,...,x̄m) )

forbidding any combination of m tuples that jointly satisfies the built-in
condition ϕ (=, !=, <, >, <=, >=, and constants).  FDs are the special case
with m = 2 and ϕ = "agree on X and differ on some Y attribute".

The condition is expressed with :mod:`repro.relational.predicates` over an
environment where the attributes of the i-th relation atom are addressed as
``"ti.Attr"``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence, Tuple as PyTuple

from repro.deps.base import Dependency, Violation
from repro.deps.fd import FD
from repro.errors import DependencyError
from repro.relational.instance import DatabaseInstance
from repro.relational.predicates import And, Comparison, Condition

__all__ = ["DenialConstraint", "fd_as_denial"]


class DenialConstraint(Dependency):
    """¬(R1(t1) ∧ ... ∧ Rm(tm) ∧ condition)."""

    __slots__ = ("relation_names", "condition", "name")

    def __init__(
        self,
        relation_names: Sequence[str],
        condition: Condition,
        name: str | None = None,
    ):
        if not relation_names:
            raise DependencyError("denial constraint needs at least one relation atom")
        self.relation_names: PyTuple[str, ...] = tuple(relation_names)
        self.condition = condition
        self.name = name or "denial"

    def relations(self) -> PyTuple[str, ...]:
        return tuple(dict.fromkeys(self.relation_names))

    def check_schema(self, db_schema) -> None:
        """Raise if an atom names a missing relation or the condition
        references an unknown ``ti.Attr`` position."""
        schemas = [db_schema.relation(name) for name in self.relation_names]
        for reference in sorted(self.condition.attributes()):
            index_text, _, attr = reference.partition(".")
            if not (index_text.startswith("t") and index_text[1:].isdigit()):
                raise DependencyError(
                    f"denial condition reference {reference!r} is not of the "
                    f"form 'ti.Attr'"
                )
            index = int(index_text[1:])
            if index >= len(schemas):
                raise DependencyError(
                    f"denial condition references atom t{index} but only "
                    f"{len(schemas)} relation atoms are declared"
                )
            schemas[index].check_attributes([attr])

    def _environment(self, tuples) -> dict:
        env: dict = {}
        for i, t in enumerate(tuples):
            for attr, value in t.as_dict().items():
                env[f"t{i}.{attr}"] = value
        return env

    def violations(self, db: DatabaseInstance) -> Iterator[Violation]:
        pools = [db.relation(name).tuples() for name in self.relation_names]
        # Variables range over tuples independently (a combo may repeat a
        # tuple); conditions like t0[Y] != t1[Y] rule the diagonal out on
        # their own, matching the standard semantics.
        for combo in itertools.product(*pools):
            if self.condition.evaluate(self._environment(combo)):
                yield Violation(
                    self,
                    list(zip(self.relation_names, combo)),
                    f"{self.name}: forbidden combination present",
                )

    def __repr__(self) -> str:
        atoms = " ∧ ".join(
            f"{rel}(t{i})" for i, rel in enumerate(self.relation_names)
        )
        return f"DenialConstraint(¬[{atoms} ∧ {self.condition!r}])"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DenialConstraint)
            and self.relation_names == other.relation_names
            and self.condition == other.condition
        )

    def __hash__(self) -> int:
        return hash((self.relation_names, self.condition))


def fd_as_denial(fd: FD) -> DenialConstraint:
    """Encode an FD X → Y as the denial constraints it abbreviates.

    The encoding uses two atoms over the FD's relation with the condition
    "t0, t1 agree on X and differ on the first Y attribute"; one denial per
    RHS attribute is folded into a disjunction-free conjunction by emitting
    the classical form for the full RHS: equality on X and inequality on Y
    cannot be captured by a single conjunctive ϕ when |Y| > 1, so this
    helper requires a singleton RHS (split the FD first).
    """
    if len(fd.rhs) != 1:
        raise DependencyError(
            "fd_as_denial requires a singleton RHS; split the FD first"
        )
    parts = [
        Comparison(f"@t0.{a}", "=", f"@t1.{a}") for a in fd.lhs
    ]
    parts.append(Comparison(f"@t0.{fd.rhs[0]}", "!=", f"@t1.{fd.rhs[0]}"))
    return DenialConstraint(
        (fd.relation_name, fd.relation_name),
        And(parts),
        name=f"fd:{list(fd.lhs)}->{fd.rhs[0]}",
    )
