"""Classical dependencies: FDs, INDs, denial constraints, Armstrong proofs,
and normalization — the traditional baseline the paper revisits."""

from repro.deps.armstrong_relation import (
    armstrong_relation,
    closed_sets,
    is_armstrong_relation,
)
from repro.deps.base import Dependency, Violation, all_violations, holds
from repro.deps.denial import DenialConstraint, fd_as_denial
from repro.deps.fd import (
    FD,
    candidate_keys,
    closure,
    equivalent,
    implies,
    is_superkey,
    minimal_cover,
    project_fds,
)
from repro.deps.ind import IND, ind_implies, is_acyclic

__all__ = [
    "Dependency",
    "armstrong_relation",
    "closed_sets",
    "is_armstrong_relation",
    "DenialConstraint",
    "FD",
    "IND",
    "Violation",
    "all_violations",
    "candidate_keys",
    "closure",
    "equivalent",
    "fd_as_denial",
    "holds",
    "implies",
    "ind_implies",
    "is_acyclic",
    "is_superkey",
    "minimal_cover",
    "project_fds",
]
