"""Functional dependencies: syntax, semantics and classical analyses.

This module is the FD row of Table 1: satisfiability is trivial (any set of
FDs is satisfiable), implication is linear time via attribute-set closure,
and Armstrong's axioms give a finite axiomatization (implemented in
:mod:`repro.deps.armstrong`).  Also provided: minimal covers, candidate-key
computation, and violation detection over instances.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple as PyTuple

from repro.deps.base import Dependency, Violation
from repro.errors import DependencyError
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import RelationSchema

__all__ = [
    "FD",
    "closure",
    "implies",
    "equivalent",
    "minimal_cover",
    "candidate_keys",
    "is_superkey",
    "project_fds",
]


class FD(Dependency):
    """A functional dependency R: X → Y."""

    __slots__ = ("relation_name", "lhs", "rhs")

    def __init__(self, relation_name: str, lhs: Sequence[str], rhs: Sequence[str]):
        if not rhs:
            raise DependencyError("FD must have a non-empty right-hand side")
        self.relation_name = relation_name
        self.lhs: PyTuple[str, ...] = tuple(dict.fromkeys(lhs))
        self.rhs: PyTuple[str, ...] = tuple(dict.fromkeys(rhs))

    def relations(self) -> PyTuple[str, ...]:
        return (self.relation_name,)

    def check_schema(self, schema: RelationSchema) -> None:
        """Raise if the FD mentions attributes outside ``schema``."""
        schema.check_attributes(self.lhs)
        schema.check_attributes(self.rhs)

    @property
    def scan_signature(self) -> PyTuple[str, ...]:
        """Canonical LHS signature; FDs and CFDs sharing it share a partition."""
        from repro.engine.indexes import canonical_signature

        return canonical_signature(self.lhs)

    def scan_tasks(self, schema: RelationSchema) -> List["ScanTask"]:
        """One compiled sweep task: pair violations within each partition.

        Within a partition all tuples agree on X, so each tuple disagreeing
        with the first on the RHS is a pair violation; singleton groups are
        skipped by the executor before any call is made.
        """
        from repro.engine.scan import ColumnarSpec, ScanTask

        from repro.engine.indexes import key_getter

        rhs_of = key_getter(schema, self.rhs)
        message = (
            f"tuples agree on {list(self.lhs)} but differ on {list(self.rhs)}"
        )

        def pair(first, other, out: list) -> None:
            if rhs_of(first.values()) != rhs_of(other.values()):
                out.append(
                    Violation(
                        self,
                        [(self.relation_name, first), (self.relation_name, other)],
                        message,
                    )
                )

        def single(t, out: list) -> None:  # FDs have no single-tuple shape
            return None

        def evaluate(group, out: list) -> None:
            if len(group) < 2:
                return
            first = group[0]
            first_rhs = rhs_of(first.values())
            for other in group[1:]:
                if first_rhs != rhs_of(other.values()):
                    out.append(
                        Violation(
                            self,
                            [(self.relation_name, first), (self.relation_name, other)],
                            message,
                        )
                    )

        return [
            ScanTask(
                None,
                [],
                evaluate,
                skip_singletons=True,
                single=single,
                pair=pair,
                columnar=ColumnarSpec(pair_attrs=self.rhs),
            )
        ]

    def group_violations(self, group: Sequence["object"]) -> Iterator[Violation]:
        """Pair violations within one X-partition (all tuples agree on X)."""
        group = list(group)
        if len(group) < 2:
            return
        out: List[Violation] = []
        self.scan_tasks(group[0].schema)[0].evaluate(group, out)
        yield from out

    def violations(self, db: DatabaseInstance) -> Iterator[Violation]:
        from repro.engine.scan import run_scan_tasks

        relation = db.relation(self.relation_name)
        # Empty-LHS FDs require all tuples to agree on rhs; the index puts
        # everything in one group keyed by (), which handles that uniformly.
        groups = relation.indexes.group_index(self.scan_signature)
        yield from run_scan_tasks(groups, self.scan_tasks(relation.schema))

    def __repr__(self) -> str:
        return f"FD({self.relation_name}: {list(self.lhs)} -> {list(self.rhs)})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FD)
            and (self.relation_name, frozenset(self.lhs), frozenset(self.rhs))
            == (other.relation_name, frozenset(other.lhs), frozenset(other.rhs))
        )

    def __hash__(self) -> int:
        return hash((self.relation_name, frozenset(self.lhs), frozenset(self.rhs)))


def closure(attributes: Iterable[str], fds: Sequence[FD]) -> FrozenSet[str]:
    """Attribute-set closure X⁺ under a set of FDs (linear-time algorithm).

    Standard Beeri–Bernstein: maintain per-FD unsatisfied-LHS counters and a
    work queue, so each attribute/FD edge is touched once.
    """
    closed: Set[str] = set()
    queue: List[str] = list(dict.fromkeys(attributes))
    # count[i] = number of LHS attributes of fds[i] not yet seen
    count: List[int] = [len(fd.lhs) for fd in fds]
    fd_by_attr: dict[str, List[int]] = {}
    for i, fd in enumerate(fds):
        for a in fd.lhs:
            fd_by_attr.setdefault(a, []).append(i)
    # FDs with an empty LHS fire unconditionally.
    for i, fd in enumerate(fds):
        if count[i] == 0:
            queue.extend(fd.rhs)
    while queue:
        attr = queue.pop()
        if attr in closed:
            continue
        closed.add(attr)
        for i in fd_by_attr.get(attr, ()):
            count[i] -= 1
            if count[i] == 0:
                queue.extend(b for b in fds[i].rhs if b not in closed)
    return frozenset(closed)


def implies(fds: Sequence[FD], fd: FD) -> bool:
    """Σ ⊨ φ for FDs: true iff rhs ⊆ closure(lhs) w.r.t. Σ on the same relation."""
    same_relation = [f for f in fds if f.relation_name == fd.relation_name]
    return set(fd.rhs) <= closure(fd.lhs, same_relation)


def equivalent(left: Sequence[FD], right: Sequence[FD]) -> bool:
    """True iff the two FD sets imply each other."""
    return all(implies(right, f) for f in left) and all(implies(left, f) for f in right)


def minimal_cover(fds: Sequence[FD]) -> List[FD]:
    """A minimal (canonical) cover: singleton RHS, no redundant LHS attribute,
    no redundant FD.  Deterministic given input order."""
    # 1. split right-hand sides
    work: List[FD] = [
        FD(fd.relation_name, fd.lhs, [b]) for fd in fds for b in fd.rhs
    ]
    # 2. remove extraneous LHS attributes
    reduced: List[FD] = []
    for fd in work:
        lhs = list(fd.lhs)
        for attr in list(lhs):
            if len(lhs) == 1:
                break
            candidate = [a for a in lhs if a != attr]
            if fd.rhs[0] in closure(candidate, work):
                lhs = candidate
        reduced.append(FD(fd.relation_name, lhs, fd.rhs))
    # 3. remove redundant FDs
    result: List[FD] = list(dict.fromkeys(reduced))
    changed = True
    while changed:
        changed = False
        for fd in list(result):
            rest = [f for f in result if f != fd]
            if implies(rest, fd):
                result = rest
                changed = True
                break
    return result


def is_superkey(attributes: Iterable[str], schema: RelationSchema, fds: Sequence[FD]) -> bool:
    """True iff ``attributes`` functionally determine the whole schema."""
    return set(schema.attribute_names) <= closure(attributes, fds)


def candidate_keys(schema: RelationSchema, fds: Sequence[FD]) -> List[FrozenSet[str]]:
    """All candidate keys (minimal superkeys) of the relation.

    Exponential in the worst case (there can be exponentially many keys);
    fine for the schema sizes of the paper's examples.
    """
    attrs = list(schema.attribute_names)
    keys: List[FrozenSet[str]] = []
    for size in range(len(attrs) + 1):
        for combo in itertools.combinations(attrs, size):
            candidate = frozenset(combo)
            if any(key <= candidate for key in keys):
                continue
            if is_superkey(candidate, schema, fds):
                keys.append(candidate)
    return keys


def project_fds(
    fds: Sequence[FD], attributes: Iterable[str], relation_name: str | None = None
) -> List[FD]:
    """FDs implied on a projection (the classical exponential algorithm).

    For every subset X of ``attributes``, emit X → (X⁺ ∩ attributes) − X.
    Used by BCNF decomposition; exponential, so intended for small schemas.
    """
    attrs = list(dict.fromkeys(attributes))
    result: List[FD] = []
    for size in range(1, len(attrs) + 1):
        for combo in itertools.combinations(attrs, size):
            closed = closure(combo, fds)
            rhs = [a for a in attrs if a in closed and a not in combo]
            if rhs:
                name = relation_name or (fds[0].relation_name if fds else "R")
                result.append(FD(name, combo, rhs))
    return minimal_cover(result) if result else []
