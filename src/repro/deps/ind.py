"""Inclusion dependencies: syntax, semantics, and implication.

INDs are the second classical baseline of the paper (Table 1): consistency is
trivial (O(1)), implication is PSPACE-complete, and — taken together with
FDs — implication becomes undecidable, which is why this module offers only
the pure-IND procedures.  The implication test implements the complete
inference system of Casanova, Fagin and Papadimitriou (reflexivity,
projection-and-permutation, transitivity) as a saturation search with an
explicit bound on derived IND width, which is exact because every derived
IND's attribute lists are drawn from the finite pool of the given ones.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence, Set, Tuple as PyTuple

from repro.deps.base import Dependency, Violation
from repro.engine.indexes import key_getter
from repro.errors import DependencyError
from repro.relational.instance import DatabaseInstance

__all__ = ["IND", "ind_implies", "is_acyclic"]


class IND(Dependency):
    """An inclusion dependency R1[X] ⊆ R2[Y] with |X| = |Y|."""

    __slots__ = ("lhs_relation", "lhs_attrs", "rhs_relation", "rhs_attrs")

    def __init__(
        self,
        lhs_relation: str,
        lhs_attrs: Sequence[str],
        rhs_relation: str,
        rhs_attrs: Sequence[str],
    ):
        if len(lhs_attrs) != len(rhs_attrs):
            raise DependencyError(
                f"IND attribute lists must have equal length: "
                f"{list(lhs_attrs)} vs {list(rhs_attrs)}"
            )
        if not lhs_attrs:
            raise DependencyError("IND attribute lists must be non-empty")
        if len(set(lhs_attrs)) != len(lhs_attrs) or len(set(rhs_attrs)) != len(rhs_attrs):
            raise DependencyError("IND attribute lists must not repeat attributes")
        self.lhs_relation = lhs_relation
        self.lhs_attrs: PyTuple[str, ...] = tuple(lhs_attrs)
        self.rhs_relation = rhs_relation
        self.rhs_attrs: PyTuple[str, ...] = tuple(rhs_attrs)

    def relations(self) -> PyTuple[str, ...]:
        return (self.lhs_relation, self.rhs_relation)

    def check_schema(self, db_schema: "DatabaseSchema") -> None:
        """Raise if either side mentions a missing relation or attribute."""
        db_schema.relation(self.lhs_relation).check_attributes(self.lhs_attrs)
        db_schema.relation(self.rhs_relation).check_attributes(self.rhs_attrs)

    def violations(self, db: DatabaseInstance) -> Iterator[Violation]:
        # The target key set is a cached index: built once per
        # (relation, attrs) and shared across every IND/CIND that needs it.
        target = db.relation(self.rhs_relation).indexes.key_set(self.rhs_attrs)
        source = db.relation(self.lhs_relation)
        message = f"no {self.rhs_relation} tuple matches on {list(self.rhs_attrs)}"
        store = source.column_store
        if store is not None:
            # Columnar: decide membership once per distinct encoded key and
            # materialize only the violating rows, in insertion order.
            positions = [source.schema.index_of(a) for a in self.lhs_attrs]
            columns = [store.columns[p] for p in positions]
            decode = [store.decode[p] for p in positions]
            verdicts: dict = {}
            for row in store.iter_live_rows():
                codes = tuple(column[row] for column in columns)
                bad = verdicts.get(codes)
                if bad is None:
                    key = tuple(d[c] for d, c in zip(decode, codes))
                    bad = key not in target
                    verdicts[codes] = bad
                if bad:
                    yield Violation(
                        self, [(self.lhs_relation, store.tuple_at(row))], message
                    )
            return
        key_of = key_getter(source.schema, self.lhs_attrs)
        for t in source:
            if key_of(t.values()) not in target:
                yield Violation(self, [(self.lhs_relation, t)], message)

    def __repr__(self) -> str:
        return (
            f"IND({self.lhs_relation}{list(self.lhs_attrs)} ⊆ "
            f"{self.rhs_relation}{list(self.rhs_attrs)})"
        )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IND) and (
            self.lhs_relation,
            self.lhs_attrs,
            self.rhs_relation,
            self.rhs_attrs,
        ) == (other.lhs_relation, other.lhs_attrs, other.rhs_relation, other.rhs_attrs)

    def __hash__(self) -> int:
        return hash(
            (self.lhs_relation, self.lhs_attrs, self.rhs_relation, self.rhs_attrs)
        )


def _projections(ind: IND, width: int) -> Iterator[IND]:
    """All projection-and-permutation consequences of ``ind`` of width ``width``."""
    positions = range(len(ind.lhs_attrs))
    for combo in itertools.permutations(positions, width):
        # Attribute lists may not repeat attributes, which permutations ensure.
        yield IND(
            ind.lhs_relation,
            [ind.lhs_attrs[i] for i in combo],
            ind.rhs_relation,
            [ind.rhs_attrs[i] for i in combo],
        )


def ind_implies(sigma: Sequence[IND], target: IND, max_derived: int = 200_000) -> bool:
    """Decide Σ ⊨ φ for INDs by saturation under the complete axioms.

    Axioms (Casanova–Fagin–Papadimitriou):

    * reflexivity  R[X] ⊆ R[X];
    * projection & permutation;
    * transitivity R[X] ⊆ S[Y], S[Y] ⊆ T[Z] ⟹ R[X] ⊆ T[Z].

    The procedure saturates the set of INDs of width ≤ |target| over the
    attributes appearing in Σ and the target; this search space is finite, so
    the procedure is exact (PSPACE-complete in general, hence the
    ``max_derived`` guard on pathological inputs).
    """
    if target.lhs_relation == target.rhs_relation and target.lhs_attrs == target.rhs_attrs:
        return True  # reflexivity
    width = len(target.lhs_attrs)
    known: Set[IND] = set()
    frontier: List[IND] = []

    def absorb(ind: IND) -> None:
        if ind not in known:
            known.add(ind)
            frontier.append(ind)

    for ind in sigma:
        if len(ind.lhs_attrs) >= width:
            for proj in _projections(ind, width):
                absorb(proj)
    while frontier:
        if len(known) > max_derived:
            raise MemoryError(
                f"IND implication saturation exceeded {max_derived} derived INDs"
            )
        current = frontier.pop()
        if current == target:
            return True
        for other in list(known):
            # transitivity in both directions
            if (
                current.rhs_relation == other.lhs_relation
                and current.rhs_attrs == other.lhs_attrs
            ):
                absorb(
                    IND(
                        current.lhs_relation,
                        current.lhs_attrs,
                        other.rhs_relation,
                        other.rhs_attrs,
                    )
                )
            if (
                other.rhs_relation == current.lhs_relation
                and other.rhs_attrs == current.lhs_attrs
            ):
                absorb(
                    IND(
                        other.lhs_relation,
                        other.lhs_attrs,
                        current.rhs_relation,
                        current.rhs_attrs,
                    )
                )
    return target in known


def is_acyclic(inds: Iterable[IND]) -> bool:
    """True iff the relation-level dependency graph of the INDs is acyclic.

    Acyclicity is the condition under which repair checking for FDs+INDs is
    tractable (Theorem 5.1) and the chase terminates.
    """
    edges: dict[str, set[str]] = {}
    for ind in inds:
        if ind.lhs_relation == ind.rhs_relation:
            return False
        edges.setdefault(ind.lhs_relation, set()).add(ind.rhs_relation)
    # Kahn-style cycle detection via DFS with colouring.
    WHITE, GREY, BLACK = 0, 1, 2
    colour: dict[str, int] = {}

    def visit(node: str) -> bool:
        colour[node] = GREY
        for succ in edges.get(node, ()):
            state = colour.get(succ, WHITE)
            if state == GREY:
                return False
            if state == WHITE and not visit(succ):
                return False
        colour[node] = BLACK
        return True

    return all(
        visit(node)
        for node in list(edges)
        if colour.get(node, WHITE) == WHITE
    )
