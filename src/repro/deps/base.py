"""Common dependency interfaces and violation records.

Every dependency class in the library (FD, IND, denial constraint, CFD,
eCFD, CIND, MD) implements :class:`Dependency`: it can check whether it
holds on a database instance and enumerate the witnesses of its failure as
:class:`Violation` records.  Violations are the raw material of Section 5:
repairing edits them away, consistent query answering reasons around them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Sequence, Tuple as PyTuple

from repro.relational.instance import DatabaseInstance
from repro.relational.tuples import Tuple

__all__ = ["Dependency", "Violation", "holds", "all_violations"]


class Violation:
    """A witness that a dependency fails on an instance.

    ``tuples`` are the concrete (relation_name, tuple) witnesses: one tuple
    for single-tuple violations (e.g. a constant CFD pattern or an
    unmatched CIND tuple), two for pair violations (classical FD-style).
    """

    __slots__ = ("dependency", "tuples", "reason")

    def __init__(
        self,
        dependency: "Dependency",
        tuples: Sequence[PyTuple[str, Tuple]],
        reason: str,
    ):
        self.dependency = dependency
        self.tuples = tuple(tuples)
        self.reason = reason

    def involved_tuples(self) -> PyTuple[Tuple, ...]:
        """Just the tuples, without relation names."""
        return tuple(t for _, t in self.tuples)

    def __repr__(self) -> str:
        witnesses = "; ".join(f"{rel}:{t!r}" for rel, t in self.tuples)
        return f"Violation({self.reason}; witnesses: {witnesses})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Violation)
            and self.dependency == other.dependency
            and self.tuples == other.tuples
        )

    def __hash__(self) -> int:
        return hash((id(type(self.dependency)), self.tuples))


class Dependency(ABC):
    """Abstract integrity constraint over a database schema."""

    @abstractmethod
    def violations(self, db: DatabaseInstance) -> Iterator[Violation]:
        """Yield every violation of this dependency in ``db``."""

    def holds_on(self, db: DatabaseInstance) -> bool:
        """True iff ``db`` satisfies the dependency (D ⊨ φ)."""
        return next(self.violations(db), None) is None

    @abstractmethod
    def relations(self) -> PyTuple[str, ...]:
        """Names of the relations the dependency is defined on."""


def holds(db: DatabaseInstance, dependencies: Sequence[Dependency]) -> bool:
    """D ⊨ Σ: true iff every dependency in the set holds."""
    return all(dep.holds_on(db) for dep in dependencies)


def all_violations(
    db: DatabaseInstance, dependencies: Sequence[Dependency]
) -> list[Violation]:
    """Collect every violation of every dependency in the set."""
    found: list[Violation] = []
    for dep in dependencies:
        found.extend(dep.violations(db))
    return found
