"""Armstrong relations for FD sets.

An *Armstrong relation* for Σ is an instance that satisfies every FD in
Σ⁺ and violates every FD not in Σ⁺ — the classical certificate that a
dependency set means exactly what it says.  Construction (Beeri, Dowd,
Fagin, Statman): for every closed attribute set C in a generating family
of the closure lattice, add a tuple agreeing with the base tuple exactly
on C.

This substrate rounds out the FD toolbox (the paper's §1 notes profiling
and reasoning support as a key reason dependencies matter for quality
tools): an Armstrong relation is the canonical test fixture for rule
discovery and for explaining a rule set to users by example.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List, Sequence, Set

from repro.deps.fd import FD, closure, implies
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple

__all__ = ["closed_sets", "armstrong_relation", "is_armstrong_relation"]


def closed_sets(schema: RelationSchema, fds: Sequence[FD]) -> List[FrozenSet[str]]:
    """All closed attribute sets X = X⁺ (exponential; small schemas)."""
    attrs = list(schema.attribute_names)
    found: Set[FrozenSet[str]] = set()
    for size in range(len(attrs) + 1):
        for combo in itertools.combinations(attrs, size):
            found.add(closure(combo, list(fds)))
    return sorted(found, key=lambda s: (len(s), sorted(s)))


def armstrong_relation(
    schema: RelationSchema, fds: Sequence[FD]
) -> RelationInstance:
    """An instance satisfying exactly the FDs implied by Σ.

    One base tuple of zeros plus, per closed set C, a tuple that equals
    the base exactly on C (fresh values elsewhere).  Values are strings
    ``"0"`` / ``"vK_A"``; the schema's attributes must accept them, so
    this constructor works on all-string schemas (use ``validate=False``
    tuples internally otherwise).
    """
    attrs = list(schema.attribute_names)
    base = Tuple(schema, {a: "0" for a in attrs}, validate=False)
    instance = RelationInstance(schema)
    instance.add(base)
    for index, closed in enumerate(closed_sets(schema, fds)):
        if set(closed) == set(attrs):
            continue  # agreeing everywhere duplicates the base tuple
        row = {
            a: "0" if a in closed else f"v{index}_{a}"
            for a in attrs
        }
        instance.add(Tuple(schema, row, validate=False))
    return instance


def is_armstrong_relation(
    instance: RelationInstance, schema: RelationSchema, fds: Sequence[FD]
) -> bool:
    """Check the defining property against all single-RHS FDs."""
    from repro.relational.instance import DatabaseInstance
    from repro.relational.schema import DatabaseSchema

    db = DatabaseInstance(DatabaseSchema([schema]))
    for t in instance:
        db.relation(schema.name).add(t)
    attrs = list(schema.attribute_names)
    for size in range(1, len(attrs)):
        for lhs in itertools.combinations(attrs, size):
            for rhs in attrs:
                if rhs in lhs:
                    continue
                fd = FD(schema.name, lhs, [rhs])
                if implies(list(fds), fd) != fd.holds_on(db):
                    return False
    return True
