"""Schema normalization: BCNF decomposition and 3NF synthesis.

Dependencies were "traditionally used ... above all, to improve the quality
of schema via normalization" (paper Section 1); this module supplies that
classical substrate so the library covers both the schema-quality and the
data-quality uses of FDs.
"""

from __future__ import annotations

from typing import FrozenSet, List, Sequence, Tuple as PyTuple

from repro.deps.fd import FD, candidate_keys, closure, is_superkey, minimal_cover, project_fds
from repro.relational.schema import RelationSchema

__all__ = [
    "is_bcnf",
    "bcnf_violating_fd",
    "bcnf_decompose",
    "third_nf_synthesize",
    "is_lossless_binary",
]


def bcnf_violating_fd(schema: RelationSchema, fds: Sequence[FD]) -> FD | None:
    """Return an FD violating BCNF (non-trivial with non-superkey LHS), if any."""
    for fd in fds:
        rhs_new = [a for a in fd.rhs if a not in fd.lhs]
        if rhs_new and not is_superkey(fd.lhs, schema, list(fds)):
            return FD(fd.relation_name, fd.lhs, rhs_new)
    return None


def is_bcnf(schema: RelationSchema, fds: Sequence[FD]) -> bool:
    """True iff the schema is in Boyce–Codd normal form w.r.t. ``fds``."""
    return bcnf_violating_fd(schema, fds) is None


def bcnf_decompose(
    schema: RelationSchema, fds: Sequence[FD]
) -> List[PyTuple[RelationSchema, List[FD]]]:
    """Classical lossless BCNF decomposition.

    Recursively split on a violating FD X → Y into (X ∪ Y) and
    (attrs − Y ∪ X), projecting the FDs each time (exponential in schema
    width; intended for the small schemas of examples, like all textbook
    implementations).
    """
    result: List[PyTuple[RelationSchema, List[FD]]] = []
    work: List[PyTuple[RelationSchema, List[FD]]] = [(schema, list(fds))]
    counter = 0
    while work:
        current_schema, current_fds = work.pop()
        violating = bcnf_violating_fd(current_schema, current_fds)
        if violating is None:
            result.append((current_schema, current_fds))
            continue
        counter += 1
        closed = closure(violating.lhs, current_fds)
        left_attrs = [
            a for a in current_schema.attribute_names if a in closed
        ]
        right_attrs = [
            a
            for a in current_schema.attribute_names
            if a in violating.lhs or a not in closed
        ]
        left_schema = current_schema.project(
            left_attrs, f"{current_schema.name}_b{counter}a"
        ).rename(f"{current_schema.name}_b{counter}a")
        right_schema = current_schema.project(
            right_attrs, f"{current_schema.name}_b{counter}b"
        ).rename(f"{current_schema.name}_b{counter}b")
        work.append(
            (left_schema, project_fds(current_fds, left_attrs, left_schema.name))
        )
        work.append(
            (right_schema, project_fds(current_fds, right_attrs, right_schema.name))
        )
    return result


def third_nf_synthesize(
    schema: RelationSchema, fds: Sequence[FD]
) -> List[RelationSchema]:
    """3NF synthesis from a minimal cover (dependency-preserving, lossless)."""
    cover = minimal_cover(fds)
    groups: dict[FrozenSet[str], set] = {}
    for fd in cover:
        groups.setdefault(frozenset(fd.lhs), set()).update(fd.lhs)
        groups[frozenset(fd.lhs)].update(fd.rhs)
    schemas: List[RelationSchema] = []
    for i, (lhs, attrs) in enumerate(sorted(groups.items(), key=lambda kv: sorted(kv[0]))):
        ordered = [a for a in schema.attribute_names if a in attrs]
        schemas.append(schema.project(ordered, f"{schema.name}_3nf{i}"))
    # Ensure some relation contains a candidate key (lossless join guarantee).
    keys = candidate_keys(schema, list(fds))
    if keys and not any(
        any(key <= set(s.attribute_names) for key in keys) for s in schemas
    ):
        key_attrs = [a for a in schema.attribute_names if a in sorted(keys[0])]
        schemas.append(schema.project(key_attrs, f"{schema.name}_3nfkey"))
    # Drop relations subsumed by others.
    kept: List[RelationSchema] = []
    for s in schemas:
        if not any(
            set(s.attribute_names) < set(o.attribute_names) for o in schemas
        ):
            if not any(set(s.attribute_names) == set(k.attribute_names) for k in kept):
                kept.append(s)
    return kept


def is_lossless_binary(
    schema: RelationSchema,
    fds: Sequence[FD],
    left_attrs: Sequence[str],
    right_attrs: Sequence[str],
) -> bool:
    """Lossless-join test for a binary decomposition.

    (R1, R2) is lossless iff R1 ∩ R2 → R1 or R1 ∩ R2 → R2 is implied.
    """
    right = set(right_attrs)
    shared = [a for a in left_attrs if a in right]
    closed = closure(shared, list(fds))
    return set(left_attrs) <= closed or set(right_attrs) <= closed
