"""Armstrong's axioms as an explicit proof system.

The paper stresses that finite axiomatizability "reveals insight into
implication analysis" (Section 4.1).  For FDs the classical system is
Armstrong's: reflexivity, augmentation and transitivity.  This module
implements the system as explicit proof search producing inspectable
:class:`Proof` objects, and is used by the tests to certify that the
closure-based decision procedure (:func:`repro.deps.fd.implies`) agrees
with derivability — i.e. the soundness/completeness half of the FD row of
Table 1.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Tuple as PyTuple

from repro.deps.fd import FD, closure

__all__ = ["ProofStep", "Proof", "derive", "is_derivable"]


class ProofStep:
    """One line of an Armstrong-system proof."""

    __slots__ = ("fd", "rule", "premises")

    def __init__(self, fd: FD, rule: str, premises: PyTuple[int, ...] = ()):
        self.fd = fd
        self.rule = rule
        self.premises = premises

    def __repr__(self) -> str:
        src = f" from {list(self.premises)}" if self.premises else ""
        return f"{self.fd!r}  [{self.rule}{src}]"


class Proof:
    """A sequence of proof steps ending in the target FD."""

    def __init__(self, steps: Sequence[ProofStep]):
        self.steps = list(steps)

    @property
    def conclusion(self) -> FD:
        return self.steps[-1].fd

    def __len__(self) -> int:
        return len(self.steps)

    def pretty(self) -> str:
        return "\n".join(f"{i}: {step!r}" for i, step in enumerate(self.steps))

    def __repr__(self) -> str:
        return f"Proof({len(self.steps)} steps ⊢ {self.conclusion!r})"


def derive(sigma: Sequence[FD], target: FD) -> Proof | None:
    """Produce an Armstrong proof of ``target`` from ``sigma``, or None.

    The construction mirrors the completeness proof of Armstrong's axioms:
    walk the closure computation of target.lhs and record, for every FD of Σ
    that fires, the reflexivity/augmentation/transitivity steps that chain
    it onto the growing derivation.  The resulting proof derives
    ``lhs → lhs⁺`` restricted to the needed attributes, then projects to the
    target by reflexivity+transitivity (decomposition is derivable).
    """
    same_relation = [f for f in sigma if f.relation_name == target.relation_name]
    if not set(target.rhs) <= closure(target.lhs, same_relation):
        return None

    relation = target.relation_name
    steps: List[ProofStep] = []
    index: Dict[FD, int] = {}

    def emit(fd: FD, rule: str, premises: PyTuple[int, ...] = ()) -> int:
        if fd in index:
            return index[fd]
        steps.append(ProofStep(fd, rule, premises))
        index[fd] = len(steps) - 1
        return index[fd]

    # Invariant: we maintain a derived FD  target.lhs → known  where `known`
    # grows from target.lhs to (a superset of) target.rhs.
    known: FrozenSet[str] = frozenset(target.lhs)
    current = emit(FD(relation, target.lhs, sorted(known)), "reflexivity")

    changed = True
    while changed and not set(target.rhs) <= known:
        changed = False
        for fd in same_relation:
            if set(fd.lhs) <= known and not set(fd.rhs) <= known:
                premise = emit(fd, "premise")
                # augmentation of the premise by `known`:
                #   lhs→rhs  ⟹  known→rhs∪known
                augmented = emit(
                    FD(relation, sorted(known), sorted(known | set(fd.rhs))),
                    "augmentation",
                    (premise,),
                )
                new_known = known | set(fd.rhs)
                # transitivity: target.lhs→known, known→known∪rhs
                current = emit(
                    FD(relation, target.lhs, sorted(new_known)),
                    "transitivity",
                    (current, augmented),
                )
                known = frozenset(new_known)
                changed = True
    # Decomposition (derivable from reflexivity+transitivity):
    #   known → target.rhs  by reflexivity, then chain.
    projection = emit(FD(relation, sorted(known), target.rhs), "reflexivity")
    emit(FD(relation, target.lhs, target.rhs), "transitivity", (current, projection))
    return Proof(steps)


def is_derivable(sigma: Sequence[FD], target: FD) -> bool:
    """True iff an Armstrong proof exists (≡ Σ ⊨ target by completeness)."""
    return derive(sigma, target) is not None
