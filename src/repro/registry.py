"""The constraint registry: pluggable (de)serialization of dependency classes.

Every dependency class the engine can evaluate registers a *codec* here: a
``type`` tag, the Python class, and ``to_dict`` / ``from_dict`` functions
mapping instances to plain JSON-ready documents and back.  The registry is
what makes the file-driven workflows (``repro.rules_json``, the CLI, the
:class:`repro.session.Session` facade) open-ended — a downstream user can
register a new constraint class and immediately load it from rules files,
detect with it, and round-trip it, without touching the serializer.

Built-in codecs cover the paper's whole catalogue:

========  =====================================  ==========================
tag       class                                  document shape
========  =====================================  ==========================
fd        :class:`repro.deps.fd.FD`              relation, lhs, rhs
cfd       :class:`repro.cfd.model.CFD`           + tableau of ``"_"``/consts
ecfd      :class:`repro.cfd.ecfd.ECFD`           + pattern of in/not_in sets
ind       :class:`repro.deps.ind.IND`            lhs/rhs relation + attrs
cind      :class:`repro.cind.model.CIND`         + Xp/Yp pattern tableau
denial    :class:`repro.deps.denial.DenialConstraint`  relations + condition
========  =====================================  ==========================

Documents produced by :func:`encode` are *canonical*: key order, list order
and set orderings are deterministic, so ``encode(decode(doc)) == doc`` for
any document the registry itself produced (byte-stable round trips).
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Type

from repro.errors import DependencyError
from repro.relational.predicates import (
    And,
    Attr,
    Comparison,
    Condition,
    Const,
    InSet,
    Not,
    Or,
    Term,
    TrueCondition,
)
from repro.relational.schema import DatabaseSchema

__all__ = [
    "ConstraintCodec",
    "register_constraint",
    "codec_for_tag",
    "codec_for_dependency",
    "registered_tags",
    "encode",
    "decode",
    "condition_to_dict",
    "condition_from_dict",
    "changeset_to_dict",
    "changeset_from_dict",
    "wal_record_to_bytes",
    "wal_records_from_bytes",
]


class ConstraintCodec:
    """One registered dependency class: tag, class, and document codecs.

    ``to_dict(dep)`` must return a JSON-ready mapping *without* the
    ``"type"`` key (the registry adds it); ``from_dict(doc)`` receives the
    full document.  ``check(dep, db_schema)`` validates the parsed rule
    against a :class:`~repro.relational.schema.DatabaseSchema`; it defaults
    to the class's own ``check_schema`` resolved against the rule's first
    relation when omitted.
    """

    __slots__ = ("tag", "cls", "to_dict", "from_dict", "check")

    def __init__(
        self,
        tag: str,
        cls: Type,
        to_dict: Callable[[Any], Dict[str, Any]],
        from_dict: Callable[[Mapping[str, Any]], Any],
        check: Optional[Callable[[Any, DatabaseSchema], None]] = None,
    ) -> None:
        self.tag = tag
        self.cls = cls
        self.to_dict = to_dict
        self.from_dict = from_dict
        self.check = check

    def __repr__(self) -> str:
        return f"ConstraintCodec({self.tag!r} -> {self.cls.__name__})"


_REGISTRY: Dict[str, ConstraintCodec] = {}


def register_constraint(codec: ConstraintCodec) -> ConstraintCodec:
    """Register (or replace) the codec for its type tag; returns it."""
    _REGISTRY[codec.tag] = codec
    return codec


def registered_tags() -> List[str]:
    """The sorted list of registered type tags."""
    return sorted(_REGISTRY)


def codec_for_tag(tag: Any) -> ConstraintCodec:
    """Look a codec up by type tag (DependencyError listing known tags)."""
    try:
        return _REGISTRY[tag]
    except (KeyError, TypeError):
        raise DependencyError(
            f"unknown constraint type {tag!r}; registered types are "
            f"{registered_tags()}"
        ) from None


def codec_for_dependency(dep: Any) -> ConstraintCodec:
    """Look a codec up for a dependency instance.

    Exact class matches win; otherwise the first registered codec whose
    class the instance is an instance of (so subclasses of a registered
    class serialize under the parent's tag unless they register their own).
    """
    for codec in _REGISTRY.values():
        if type(dep) is codec.cls:
            return codec
    for codec in _REGISTRY.values():
        if isinstance(dep, codec.cls):
            return codec
    raise DependencyError(
        f"cannot serialize rule of type {type(dep).__name__}; "
        f"registered types are {registered_tags()}"
    )


def encode(dep: Any) -> Dict[str, Any]:
    """Serialize a dependency to a document with its ``"type"`` tag first."""
    codec = codec_for_dependency(dep)
    document: Dict[str, Any] = {"type": codec.tag}
    document.update(codec.to_dict(dep))
    return document


def decode(document: Mapping[str, Any]) -> Any:
    """Parse a document into a dependency via its ``"type"`` tag."""
    return codec_for_tag(document.get("type")).from_dict(document)


# --------------------------------------------------------------------------
# Changeset documents (the edit-batch wire format)
# --------------------------------------------------------------------------


def changeset_to_dict(changeset: Any) -> Dict[str, Any]:
    """Serialize a :class:`~repro.engine.delta.Changeset` to its wire
    document — ``{"ops": [{"op": ..., "relation": ..., "row": ...}, ...]}``.

    This is the same document shape ``repro.server`` accepts on
    ``POST /sessions/{id}/apply``; the codec lives on the class, this
    function just makes the registry the one lookup point for every wire
    format (rules, schemas, conditions, changesets).
    """
    return changeset.to_dict()


def changeset_from_dict(document: Mapping[str, Any]) -> Any:
    """Parse a changeset wire document (see :func:`changeset_to_dict`)."""
    from repro.engine.delta import Changeset

    return Changeset.from_dict(document)


# --------------------------------------------------------------------------
# WAL record framing (the durability layer's on-disk format)
# --------------------------------------------------------------------------

#: frame header: payload length + CRC32 of the payload, both big-endian u32
_WAL_HEADER = struct.Struct(">II")


def wal_record_to_bytes(document: Mapping[str, Any]) -> bytes:
    """Frame one JSON document as a crash-safe WAL record.

    The payload is canonical JSON (sorted keys, compact separators, UTF-8),
    preceded by an 8-byte header carrying its length and CRC32.  A torn
    final write — a record cut short by a crash at any byte boundary — is
    detectable on read: either the header is incomplete, the payload is
    shorter than the header promises, or the CRC does not match.
    """
    payload = json.dumps(
        document, sort_keys=True, separators=(",", ":"), default=str
    ).encode("utf-8")
    return _WAL_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def wal_records_from_bytes(
    data: bytes,
) -> Tuple[List[Dict[str, Any]], int]:
    """Parse framed WAL records; returns ``(documents, clean_length)``.

    ``clean_length`` is the byte offset of the first torn or corrupt frame
    (equal to ``len(data)`` when the log is intact).  Parsing stops at the
    first bad frame — everything after a torn record is unreachable by
    construction (records are appended and fsync'd in order), so the
    caller truncates the log file to ``clean_length`` on recovery.
    """
    documents: List[Dict[str, Any]] = []
    offset = 0
    total = len(data)
    while offset < total:
        if offset + _WAL_HEADER.size > total:
            break  # torn header
        length, crc = _WAL_HEADER.unpack_from(data, offset)
        start = offset + _WAL_HEADER.size
        end = start + length
        if end > total:
            break  # torn payload
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # corrupt payload
        try:
            document = json.loads(payload)
        except json.JSONDecodeError:
            break  # CRC collision on garbage: treat as torn
        if not isinstance(document, dict):
            break
        documents.append(document)
        offset = end
    return documents, offset


# --------------------------------------------------------------------------
# Condition documents (denial constraints)
# --------------------------------------------------------------------------


def _term_to_dict(term: Term) -> Dict[str, Any]:
    if isinstance(term, Attr):
        return {"attr": term.name}
    if isinstance(term, Const):
        return {"const": term.value}
    raise DependencyError(f"cannot serialize term of type {type(term).__name__}")


def _term_from_dict(document: Mapping[str, Any]) -> Term:
    if "attr" in document:
        return Attr(document["attr"])
    if "const" in document:
        return Const(document["const"])
    raise DependencyError(f"term document needs 'attr' or 'const': {document!r}")


def condition_to_dict(condition: Condition) -> Dict[str, Any]:
    """Serialize a predicate condition tree to a nested document."""
    if isinstance(condition, Comparison):
        return {
            "op": condition.op,
            "left": _term_to_dict(condition.left),
            "right": _term_to_dict(condition.right),
        }
    if isinstance(condition, And):
        return {"and": [condition_to_dict(p) for p in condition.parts]}
    if isinstance(condition, Or):
        return {"or": [condition_to_dict(p) for p in condition.parts]}
    if isinstance(condition, Not):
        return {"not": condition_to_dict(condition.part)}
    if isinstance(condition, InSet):
        return {
            "term": _term_to_dict(condition.term),
            "values": sorted(condition.values, key=repr),
            "negated": condition.negated,
        }
    if isinstance(condition, TrueCondition):
        return {"true": True}
    raise DependencyError(
        f"cannot serialize condition of type {type(condition).__name__}"
    )


def condition_from_dict(document: Mapping[str, Any]) -> Condition:
    """Parse a nested condition document back into a predicate tree."""
    if "op" in document:
        return Comparison(
            _term_from_dict(document["left"]),
            document["op"],
            _term_from_dict(document["right"]),
        )
    if "and" in document:
        return And([condition_from_dict(p) for p in document["and"]])
    if "or" in document:
        return Or([condition_from_dict(p) for p in document["or"]])
    if "not" in document:
        return Not(condition_from_dict(document["not"]))
    if "values" in document:
        return InSet(
            _term_from_dict(document["term"]),
            document["values"],
            negated=bool(document.get("negated", False)),
        )
    if document.get("true"):
        return TrueCondition()
    raise DependencyError(f"unrecognized condition document: {document!r}")


# --------------------------------------------------------------------------
# Built-in codecs
# --------------------------------------------------------------------------


def _register_builtins() -> None:
    """Register the paper's dependency classes (import-cycle-safe)."""
    from repro.cfd.ecfd import ANY, ECFD, SetPattern
    from repro.cfd.model import CFD, UNNAMED, PatternTableau
    from repro.cind.model import CIND
    from repro.deps.denial import DenialConstraint
    from repro.deps.fd import FD
    from repro.deps.ind import IND

    # -- fd ----------------------------------------------------------------
    def fd_to_dict(fd: FD) -> Dict[str, Any]:
        return {
            "relation": fd.relation_name,
            "lhs": list(fd.lhs),
            "rhs": list(fd.rhs),
        }

    def fd_from_dict(doc: Mapping[str, Any]) -> FD:
        return FD(doc["relation"], doc["lhs"], doc["rhs"])

    def fd_check(fd: FD, db_schema: DatabaseSchema) -> None:
        fd.check_schema(db_schema.relation(fd.relation_name))

    register_constraint(ConstraintCodec("fd", FD, fd_to_dict, fd_from_dict, fd_check))

    # -- cfd ---------------------------------------------------------------
    def cfd_to_dict(cfd: CFD) -> Dict[str, Any]:
        return {
            "relation": cfd.relation_name,
            "name": cfd.name,
            "lhs": list(cfd.lhs),
            "rhs": list(cfd.rhs),
            "tableau": [
                {
                    attr: ("_" if tp.get(attr) is UNNAMED else tp.get(attr))
                    for attr in cfd.tableau.attributes
                }
                for tp in cfd.tableau
            ],
        }

    def cfd_from_dict(doc: Mapping[str, Any]) -> CFD:
        rows = [
            {attr: (UNNAMED if v == "_" else v) for attr, v in row.items()}
            for row in doc["tableau"]
        ]
        attrs = tuple(doc["lhs"]) + tuple(
            a for a in doc["rhs"] if a not in doc["lhs"]
        )
        return CFD(
            doc["relation"],
            doc["lhs"],
            doc["rhs"],
            PatternTableau(attrs, rows),
            name=doc.get("name"),
        )

    def cfd_check(cfd: CFD, db_schema: DatabaseSchema) -> None:
        cfd.check_schema(db_schema.relation(cfd.relation_name))

    register_constraint(
        ConstraintCodec("cfd", CFD, cfd_to_dict, cfd_from_dict, cfd_check)
    )

    # -- ecfd --------------------------------------------------------------
    def _set_pattern_to_dict(pattern: Any) -> Any:
        if pattern is ANY:
            return "_"
        key = "not_in" if pattern.negated else "in"
        return {key: sorted(pattern.values, key=repr)}

    def _set_pattern_from_dict(cell: Any) -> Any:
        if cell == "_":
            return ANY
        if isinstance(cell, Mapping):
            if "in" in cell:
                return SetPattern(cell["in"])
            if "not_in" in cell:
                return SetPattern(cell["not_in"], negated=True)
            raise DependencyError(
                f"eCFD pattern cell needs 'in' or 'not_in': {cell!r}"
            )
        # bare constant shorthand: positive singleton
        return SetPattern([cell])

    def ecfd_to_dict(ecfd: ECFD) -> Dict[str, Any]:
        return {
            "relation": ecfd.relation_name,
            "name": ecfd.name,
            "lhs": list(ecfd.lhs),
            "rhs": list(ecfd.rhs),
            "pattern": {
                a: _set_pattern_to_dict(ecfd.pattern[a])
                for a in ecfd.lhs + ecfd.rhs
            },
        }

    def ecfd_from_dict(doc: Mapping[str, Any]) -> ECFD:
        pattern = {
            a: _set_pattern_from_dict(cell)
            for a, cell in doc.get("pattern", {}).items()
        }
        return ECFD(
            doc["relation"], doc["lhs"], doc["rhs"], pattern, name=doc.get("name")
        )

    def ecfd_check(ecfd: ECFD, db_schema: DatabaseSchema) -> None:
        ecfd.check_schema(db_schema.relation(ecfd.relation_name))

    register_constraint(
        ConstraintCodec("ecfd", ECFD, ecfd_to_dict, ecfd_from_dict, ecfd_check)
    )

    # -- ind ---------------------------------------------------------------
    def ind_to_dict(ind: IND) -> Dict[str, Any]:
        return {
            "lhs_relation": ind.lhs_relation,
            "lhs": list(ind.lhs_attrs),
            "rhs_relation": ind.rhs_relation,
            "rhs": list(ind.rhs_attrs),
        }

    def ind_from_dict(doc: Mapping[str, Any]) -> IND:
        return IND(
            doc["lhs_relation"], doc["lhs"], doc["rhs_relation"], doc["rhs"]
        )

    def ind_check(ind: IND, db_schema: DatabaseSchema) -> None:
        ind.check_schema(db_schema)

    register_constraint(
        ConstraintCodec("ind", IND, ind_to_dict, ind_from_dict, ind_check)
    )

    # -- cind --------------------------------------------------------------
    def cind_to_dict(cind: CIND) -> Dict[str, Any]:
        return {
            "lhs_relation": cind.lhs_relation,
            "lhs": list(cind.lhs_attrs),
            "rhs_relation": cind.rhs_relation,
            "rhs": list(cind.rhs_attrs),
            "name": cind.name,
            "lhs_pattern": list(cind.lhs_pattern_attrs),
            "rhs_pattern": list(cind.rhs_pattern_attrs),
            "tableau": [
                {
                    **{f"L.{a}": row[f"L.{a}"] for a in cind.lhs_pattern_attrs},
                    **{f"R.{a}": row[f"R.{a}"] for a in cind.rhs_pattern_attrs},
                }
                for row in cind.tableau
            ],
        }

    def cind_from_dict(doc: Mapping[str, Any]) -> CIND:
        return CIND(
            doc["lhs_relation"],
            doc["lhs"],
            doc["rhs_relation"],
            doc["rhs"],
            lhs_pattern_attrs=doc.get("lhs_pattern", ()),
            rhs_pattern_attrs=doc.get("rhs_pattern", ()),
            tableau=doc.get("tableau", ({},)),
            name=doc.get("name"),
        )

    def cind_check(cind: CIND, db_schema: DatabaseSchema) -> None:
        cind.check_schema(db_schema)

    register_constraint(
        ConstraintCodec("cind", CIND, cind_to_dict, cind_from_dict, cind_check)
    )

    # -- denial ------------------------------------------------------------
    def denial_to_dict(denial: DenialConstraint) -> Dict[str, Any]:
        return {
            "name": denial.name,
            "relations": list(denial.relation_names),
            "condition": condition_to_dict(denial.condition),
        }

    def denial_from_dict(doc: Mapping[str, Any]) -> DenialConstraint:
        return DenialConstraint(
            doc["relations"],
            condition_from_dict(doc["condition"]),
            name=doc.get("name"),
        )

    def denial_check(denial: DenialConstraint, db_schema: DatabaseSchema) -> None:
        denial.check_schema(db_schema)

    register_constraint(
        ConstraintCodec(
            "denial", DenialConstraint, denial_to_dict, denial_from_dict, denial_check
        )
    )


_register_builtins()
