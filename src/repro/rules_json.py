"""JSON (de)serialization of schemas and dependencies.

A downstream user drives the detectors from files: a schema document
describes one relation — or, with a top-level ``"relations"`` list, a whole
database schema — and a rules document lists constraints of any class
registered in :mod:`repro.registry` (FDs, CFDs, eCFDs, INDs, CINDs, denial
constraints, plus anything a user registers).  The wildcard '_' is spelled
as the literal string ``"_"`` in CFD/eCFD pattern cells; typed constants
are parsed against the schema's domains.

Single-relation schema document::

    {"name": "customer",
     "attributes": [{"name": "CC", "type": "int"},
                    {"name": "city", "type": "string"}]}

Multi-relation schema document::

    {"relations": [{"name": "customer", "attributes": [...]},
                   {"name": "orders", "attributes": [...]}]}

Rules document (one entry per constraint, dispatched on ``"type"``)::

    [{"type": "fd", "relation": "customer",
      "lhs": ["CC", "AC"], "rhs": ["city"]},
     {"type": "cfd", "relation": "customer",
      "lhs": ["CC", "zip"], "rhs": ["street"],
      "tableau": [{"CC": 44, "zip": "_", "street": "_"}]},
     {"type": "ind", "lhs_relation": "orders", "lhs": ["phn"],
      "rhs_relation": "customer", "rhs": ["phn"]}]

See ``docs/api.md`` for the full document shapes of every built-in class
and for how to register new ones.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence, Union

from repro import registry
from repro.deps.base import Dependency
from repro.errors import DependencyError, DomainError, ReproError, SchemaError
from repro.relational.domains import BOOL, Domain, EnumDomain, FLOAT, INT, STRING
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "schema_from_dict",
    "schema_to_dict",
    "database_schema_from_dict",
    "database_schema_to_dict",
    "rules_from_list",
    "rules_to_list",
    "load_schema",
    "load_database_schema",
    "load_rules",
]

_TYPE_TO_DOMAIN: Dict[str, Domain] = {
    "int": INT,
    "float": FLOAT,
    "string": STRING,
    "bool": BOOL,
}
_DOMAIN_TO_TYPE = {v.name: k for k, v in _TYPE_TO_DOMAIN.items()}


def schema_from_dict(document: Mapping[str, Any]) -> RelationSchema:
    """Parse a single-relation schema document into a :class:`RelationSchema`."""
    try:
        name = document["name"]
        specs = document["attributes"]
    except KeyError as exc:
        raise SchemaError(f"schema document missing key {exc}") from exc
    attributes: List[Attribute] = []
    for spec in specs:
        type_name = spec.get("type", "string")
        if type_name == "enum":
            domain: Domain = EnumDomain(spec["values"])
        elif type_name in _TYPE_TO_DOMAIN:
            domain = _TYPE_TO_DOMAIN[type_name]
        else:
            raise SchemaError(
                f"unknown attribute type {type_name!r}; "
                f"expected one of {sorted(_TYPE_TO_DOMAIN)} or 'enum'"
            )
        attributes.append(Attribute(spec["name"], domain))
    return RelationSchema(name, attributes)


def schema_to_dict(schema: RelationSchema) -> Dict[str, Any]:
    """Serialize a relation schema back to a document."""
    attributes = []
    for attr in schema.attributes:
        if isinstance(attr.domain, EnumDomain) and attr.domain != BOOL:
            attributes.append(
                {
                    "name": attr.name,
                    "type": "enum",
                    "values": sorted(attr.domain.values(), key=repr),
                }
            )
        else:
            attributes.append(
                {
                    "name": attr.name,
                    "type": _DOMAIN_TO_TYPE.get(attr.domain.name, "string"),
                }
            )
    return {"name": schema.name, "attributes": attributes}


def database_schema_from_dict(document: Mapping[str, Any]) -> DatabaseSchema:
    """Parse a schema document (either form) into a :class:`DatabaseSchema`.

    A ``{"relations": [...]}`` document yields one relation per entry; a
    plain single-relation document yields a one-relation database schema.
    """
    if "relations" in document:
        return DatabaseSchema(
            [schema_from_dict(spec) for spec in document["relations"]]
        )
    return DatabaseSchema([schema_from_dict(document)])


def database_schema_to_dict(db_schema: DatabaseSchema) -> Dict[str, Any]:
    """Serialize a database schema to the multi-relation document form."""
    return {"relations": [schema_to_dict(rel) for rel in db_schema]}


def _as_database_schema(
    schema: Union[RelationSchema, DatabaseSchema, None]
) -> DatabaseSchema | None:
    if schema is None or isinstance(schema, DatabaseSchema):
        return schema
    return DatabaseSchema([schema])


def _rule_context(index: int, kind: Any, rule: Dependency | None) -> str:
    relations = ", ".join(rule.relations()) if rule is not None else "?"
    return f"rule #{index} ({kind} on relation {relations})"


def _reraise_with_context(exc: ReproError, context: str) -> None:
    """Re-raise ``exc`` with the rule context prefixed to its message.

    The library's own error classes take a single message argument and are
    reconstructed under their original type (callers catch SchemaError /
    DomainError specifically); errors from user-registered codecs may have
    arbitrary constructors, so they are wrapped in DependencyError instead
    of being rebuilt.
    """
    cls = type(exc)
    if cls in (SchemaError, DomainError, DependencyError):
        raise cls(f"{context}: {exc}") from exc
    raise DependencyError(f"{context}: {exc}") from exc


def rules_from_list(
    documents: Sequence[Mapping[str, Any]],
    schema: Union[RelationSchema, DatabaseSchema, None] = None,
) -> List[Dependency]:
    """Parse a rules document into dependency objects via the registry.

    Any constraint class registered in :mod:`repro.registry` is accepted;
    unknown ``"type"`` tags raise :class:`DependencyError` listing the
    registered tags.  If a schema (relation or database) is supplied every
    rule is validated against it, and validation errors name the offending
    rule's index and relation(s), not just the attribute.
    """
    db_schema = _as_database_schema(schema)
    rules: List[Dependency] = []
    for i, doc in enumerate(documents):
        kind = doc.get("type")
        try:
            codec = registry.codec_for_tag(kind)
        except DependencyError as exc:
            raise DependencyError(f"rule #{i}: {exc}") from exc
        try:
            rule = codec.from_dict(doc)
        except ReproError as exc:
            _reraise_with_context(exc, _rule_context(i, kind, None))
        except KeyError as exc:
            raise DependencyError(
                f"rule #{i} ({kind}): document missing key {exc}"
            ) from exc
        if db_schema is not None and codec.check is not None:
            try:
                codec.check(rule, db_schema)
            except ReproError as exc:
                _reraise_with_context(exc, _rule_context(i, kind, rule))
        rules.append(rule)
    return rules


def rules_to_list(rules: Sequence[Dependency]) -> List[Dict[str, Any]]:
    """Serialize dependencies back to plain documents via the registry."""
    return [registry.encode(rule) for rule in rules]


def load_schema(path) -> RelationSchema:
    """Read a single-relation schema document from a JSON file.

    Multi-relation documents are accepted when they declare exactly one
    relation; use :func:`load_database_schema` for the general case.
    """
    with open(path) as handle:
        document = json.load(handle)
    if "relations" in document:
        relations = document["relations"]
        if len(relations) != 1:
            raise SchemaError(
                f"schema file {path} declares {len(relations)} relations; "
                "use load_database_schema for multi-relation documents"
            )
        return schema_from_dict(relations[0])
    return schema_from_dict(document)


def load_database_schema(path) -> DatabaseSchema:
    """Read a schema document (either form) from a JSON file."""
    with open(path) as handle:
        return database_schema_from_dict(json.load(handle))


def load_rules(
    path, schema: Union[RelationSchema, DatabaseSchema, None] = None
) -> List[Dependency]:
    """Read a rules document from a JSON file."""
    with open(path) as handle:
        return rules_from_list(json.load(handle), schema)
