"""JSON (de)serialization of schemas and dependencies.

A downstream user drives the detectors from files: a schema document
describes one relation (attribute names and types), and a rules document
lists FDs and CFDs.  The wildcard '_' is spelled as the literal string
``"_"`` in CFD pattern rows; typed constants are parsed against the
schema's domains.

Schema document::

    {"name": "customer",
     "attributes": [{"name": "CC", "type": "int"},
                    {"name": "city", "type": "string"}]}

Rules document::

    [{"type": "fd", "relation": "customer",
      "lhs": ["CC", "AC"], "rhs": ["city"]},
     {"type": "cfd", "relation": "customer",
      "lhs": ["CC", "zip"], "rhs": ["street"],
      "tableau": [{"CC": 44, "zip": "_", "street": "_"}]}]
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Sequence

from repro.cfd.model import CFD, UNNAMED, PatternTableau
from repro.deps.base import Dependency
from repro.deps.fd import FD
from repro.errors import DependencyError, SchemaError
from repro.relational.domains import BOOL, Domain, EnumDomain, FLOAT, INT, STRING
from repro.relational.schema import Attribute, RelationSchema

__all__ = [
    "schema_from_dict",
    "schema_to_dict",
    "rules_from_list",
    "rules_to_list",
    "load_schema",
    "load_rules",
]

_TYPE_TO_DOMAIN: Dict[str, Domain] = {
    "int": INT,
    "float": FLOAT,
    "string": STRING,
    "bool": BOOL,
}
_DOMAIN_TO_TYPE = {v.name: k for k, v in _TYPE_TO_DOMAIN.items()}


def schema_from_dict(document: Mapping[str, Any]) -> RelationSchema:
    """Parse a schema document into a :class:`RelationSchema`."""
    try:
        name = document["name"]
        specs = document["attributes"]
    except KeyError as exc:
        raise SchemaError(f"schema document missing key {exc}") from exc
    attributes: List[Attribute] = []
    for spec in specs:
        type_name = spec.get("type", "string")
        if type_name == "enum":
            domain: Domain = EnumDomain(spec["values"])
        elif type_name in _TYPE_TO_DOMAIN:
            domain = _TYPE_TO_DOMAIN[type_name]
        else:
            raise SchemaError(
                f"unknown attribute type {type_name!r}; "
                f"expected one of {sorted(_TYPE_TO_DOMAIN)} or 'enum'"
            )
        attributes.append(Attribute(spec["name"], domain))
    return RelationSchema(name, attributes)


def schema_to_dict(schema: RelationSchema) -> Dict[str, Any]:
    """Serialize a relation schema back to a document."""
    attributes = []
    for attr in schema.attributes:
        if isinstance(attr.domain, EnumDomain) and attr.domain != BOOL:
            attributes.append(
                {
                    "name": attr.name,
                    "type": "enum",
                    "values": sorted(attr.domain.values(), key=repr),
                }
            )
        else:
            attributes.append(
                {
                    "name": attr.name,
                    "type": _DOMAIN_TO_TYPE.get(attr.domain.name, "string"),
                }
            )
    return {"name": schema.name, "attributes": attributes}


def _parse_pattern_cell(value: Any):
    return UNNAMED if value == "_" else value


def rules_from_list(
    documents: Sequence[Mapping[str, Any]], schema: RelationSchema | None = None
) -> List[Dependency]:
    """Parse a rules document into FD/CFD objects (validated if a schema
    is supplied)."""
    rules: List[Dependency] = []
    for i, doc in enumerate(documents):
        kind = doc.get("type")
        if kind == "fd":
            rule: Dependency = FD(doc["relation"], doc["lhs"], doc["rhs"])
        elif kind == "cfd":
            rows = [
                {attr: _parse_pattern_cell(v) for attr, v in row.items()}
                for row in doc["tableau"]
            ]
            attrs = tuple(doc["lhs"]) + tuple(
                a for a in doc["rhs"] if a not in doc["lhs"]
            )
            rule = CFD(
                doc["relation"],
                doc["lhs"],
                doc["rhs"],
                PatternTableau(attrs, rows),
                name=doc.get("name"),
            )
        else:
            raise DependencyError(
                f"rule #{i}: unknown type {kind!r}; expected 'fd' or 'cfd'"
            )
        if schema is not None:
            if isinstance(rule, FD):
                rule.check_schema(schema)
            else:
                rule.check_schema(schema)
        rules.append(rule)
    return rules


def rules_to_list(rules: Sequence[Dependency]) -> List[Dict[str, Any]]:
    """Serialize FDs/CFDs back to plain documents."""
    documents: List[Dict[str, Any]] = []
    for rule in rules:
        if isinstance(rule, CFD):
            documents.append(
                {
                    "type": "cfd",
                    "relation": rule.relation_name,
                    "name": rule.name,
                    "lhs": list(rule.lhs),
                    "rhs": list(rule.rhs),
                    "tableau": [
                        {
                            attr: ("_" if tp.get(attr) is UNNAMED else tp.get(attr))
                            for attr in rule.tableau.attributes
                        }
                        for tp in rule.tableau
                    ],
                }
            )
        elif isinstance(rule, FD):
            documents.append(
                {
                    "type": "fd",
                    "relation": rule.relation_name,
                    "lhs": list(rule.lhs),
                    "rhs": list(rule.rhs),
                }
            )
        else:
            raise DependencyError(f"cannot serialize rule of type {type(rule).__name__}")
    return documents


def load_schema(path) -> RelationSchema:
    """Read a schema document from a JSON file."""
    with open(path) as handle:
        return schema_from_dict(json.load(handle))


def load_rules(path, schema: RelationSchema | None = None) -> List[Dependency]:
    """Read a rules document from a JSON file."""
    with open(path) as handle:
        return rules_from_list(json.load(handle), schema)
