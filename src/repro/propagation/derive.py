"""Automatic derivation of view CFDs (paper §4.1, "Computing view
dependencies with conditions" [37]).

:func:`propagates` *checks* a given view dependency; this module
*generates* the view CFDs that hold, by building candidates from the
source dependencies and the view's structure and filtering them through
the propagation decision:

* each source CFD whose attributes survive into the view yields a
  candidate with the same embedded FD and pattern;
* every ``Extend`` tag in the view (the CC column of Example 4.2)
  contributes *conditional* variants — the source CFD's LHS extended with
  the tag attribute pinned to each branch constant — which is exactly how
  f3 reappears as ϕ7 and f3+i as ϕ8;
* tag columns themselves yield candidate constant CFDs (∅ → tag = c per
  branch) when the view has a single branch.

The generator is deliberately a *candidate* enumerator: soundness comes
entirely from the exact propagation check, completeness is relative to
the candidate shapes above (the shapes of [37]'s output).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.cfd.model import CFD, PatternTableau
from repro.cfd.normal_form import denormalize
from repro.deps.fd import FD
from repro.propagation.propagate import propagates
from repro.relational.query import Base, Extend, Project, Product, Query, Rename, Select, Union
from repro.relational.schema import DatabaseSchema

__all__ = ["view_tags", "candidate_view_cfds", "derive_view_cfds"]


def view_tags(view: Query) -> Dict[str, Set]:
    """Constant-valued attributes added by Extend nodes: name → values."""
    tags: Dict[str, Set] = {}

    def walk(node: Query) -> None:
        if isinstance(node, Extend):
            tags.setdefault(node.attribute.name, set()).add(node.value)
            walk(node.child)
        elif isinstance(node, (Select, Project, Rename)):
            walk(node.child)
        elif isinstance(node, (Union, Product)):
            walk(node.left)
            walk(node.right)
        # Base: nothing

    walk(view)
    return tags


def candidate_view_cfds(
    db_schema: DatabaseSchema,
    sigma: Sequence[CFD | FD],
    view: Query,
) -> List[CFD]:
    """Enumerate candidate view CFDs from Σ and the view structure."""
    view_schema = view.output_schema(db_schema)
    view_attrs = set(view_schema.attribute_names)
    tags = view_tags(view)
    candidates: List[CFD] = []
    seen: Set = set()

    def add(cfd: CFD) -> None:
        key = (cfd.lhs, cfd.rhs, cfd.tableau)
        if key not in seen:
            seen.add(key)
            candidates.append(cfd)

    from repro.cfd.model import fd_as_cfd

    source_cfds = [
        fd_as_cfd(dep) if isinstance(dep, FD) else dep for dep in sigma
    ]
    for cfd in source_cfds:
        attrs = set(cfd.lhs) | set(cfd.rhs)
        if not attrs <= view_attrs:
            continue
        tableau_attrs = tuple(cfd.lhs) + tuple(
            a for a in cfd.rhs if a not in cfd.lhs
        )
        # 1. as-is (unconditional)
        add(
            CFD(
                view_schema.name,
                cfd.lhs,
                cfd.rhs,
                PatternTableau(
                    tableau_attrs,
                    [tp.project(tableau_attrs) for tp in cfd.tableau],
                ),
            )
        )
        # 2. conditioned on each tag constant
        for tag_attr, values in tags.items():
            if tag_attr in attrs:
                continue
            new_lhs = list(cfd.lhs) + [tag_attr]
            new_attrs = tuple(new_lhs) + tuple(
                a for a in cfd.rhs if a not in new_lhs
            )
            for value in sorted(values, key=repr):
                rows = []
                for tp in cfd.tableau:
                    row = tp.project(tableau_attrs).as_dict()
                    row[tag_attr] = value
                    rows.append(row)
                add(
                    CFD(
                        view_schema.name,
                        new_lhs,
                        cfd.rhs,
                        PatternTableau(new_attrs, rows),
                    )
                )
    return candidates


def derive_view_cfds(
    db_schema: DatabaseSchema,
    sigma: Sequence[CFD | FD],
    view: Query,
    merge_tableaux: bool = True,
) -> List[CFD]:
    """The view CFDs from the candidate space that Σ actually propagates.

    With ``merge_tableaux`` the surviving single-condition variants of one
    embedded FD are regrouped into a single pattern tableau — producing
    ϕ8's three-row presentation from Example 4.2 automatically.
    """
    surviving = [
        c
        for c in candidate_view_cfds(db_schema, sigma, view)
        if propagates(db_schema, sigma, view, c)
    ]
    return denormalize(surviving) if merge_tableaux else surviving
