"""Helper constructors for integration views (paper Example 4.2).

Dependency propagation asks whether source dependencies force a view
dependency through an SPCU query.  The canonical shape — and the one in
Example 4.2 — is a union of sources, each tagged with a constant (the
country code) via :class:`~repro.relational.query.Extend`.  This module
provides that constructor plus small conveniences used by the examples,
benchmarks and tests.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple as PyTuple

from repro.errors import QueryError
from repro.relational.query import Base, Extend, Project, Query, Select, Union
from repro.relational.schema import Attribute

__all__ = ["tagged_union_view", "select_project_view"]


def tagged_union_view(
    branches: Sequence[PyTuple[str, Any]],
    tag_attribute: Attribute,
    keep_attributes: Sequence[str] | None = None,
) -> Query:
    """⋃_i Extend(R_i, tag = value_i) — the Example 4.2 integration view.

    ``branches`` lists (relation_name, tag_value) pairs; every source must
    be union-compatible.  ``keep_attributes`` optionally projects each
    branch first (tag attribute appended automatically).
    """
    if not branches:
        raise QueryError("tagged_union_view needs at least one branch")
    views = []
    for relation_name, tag_value in branches:
        branch: Query = Base(relation_name)
        if keep_attributes is not None:
            branch = Project(branch, keep_attributes)
        branch = Extend(branch, tag_attribute, tag_value)
        views.append(branch)
    view = views[0]
    for other in views[1:]:
        view = Union(view, other)
    return view


def select_project_view(
    relation_name: str,
    condition=None,
    attributes: Sequence[str] | None = None,
) -> Query:
    """σ→π view over one base relation (the single-operator cases of
    Theorem 4.7)."""
    view: Query = Base(relation_name)
    if condition is not None:
        view = Select(view, condition)
    if attributes is not None:
        view = Project(view, attributes)
    return view
