"""CFD propagation through SPCU views (paper §4.1, Theorem 4.7).

Decides Σ ⊨σ ϕ — does every source database satisfying the source CFDs Σ
yield a view σ(D) satisfying the view CFD ϕ? — by the classical tableau
method extended with patterns:

1. build *two symbolic view tuples* v1, v2 instantiating ϕ's hypothesis:
   shared variables on ϕ's LHS (v1[X] = v2[X]), pattern constants where
   tp[X] is constant, fresh variables elsewhere;
2. *invert the view*: push the two tuples back through the SPCU tree,
   producing the source tableaux that could generate them (a disjunction of
   alternatives — one per combination of union branches), accumulating the
   equalities/constants the operators force (selection conditions, Extend
   tags, projections introduce fresh variables);
3. *chase* each alternative with the source CFDs: a pattern row fires when
   a pair of source tuples is **forced** to agree on the row's LHS and to
   carry its constants — a variable is never assumed equal to a constant,
   the canonical fresh-value reading;
4. ϕ is propagated iff in every non-contradictory alternative the chase
   forces ϕ's conclusion (v1[Y] = v2[Y] and the tp[Y] constants).

In the absence of finite-domain attributes the chased tableau instantiated
with fresh distinct constants is a genuine counterexample, so the
procedure is **exact and polynomial** — the PTIME case of Theorem 4.7.
With finite domains the "not propagated" answer may be conservative (the
general problem is coNP-complete).  Selection conditions are restricted to
conjunctions of equalities (the S of SPC); anything else raises
:class:`~repro.errors.QueryError`.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Sequence, Tuple as PyTuple

from repro.cfd.model import CFD, UNNAMED, PatternTuple, fd_as_cfd
from repro.deps.fd import FD
from repro.errors import QueryError
from repro.relational.predicates import And, Attr, Comparison, Condition, Const, TrueCondition
from repro.relational.query import (
    Base,
    Difference,
    Extend,
    Project,
    Product,
    Query,
    Rename,
    Select,
    Union,
)
from repro.relational.schema import DatabaseSchema

__all__ = ["propagates", "propagated_cfds"]


class _SymEnv:
    """Union-find over symbolic values with optional constant binding."""

    def __init__(self) -> None:
        self._parent: Dict[int, int] = {}
        self._const: Dict[int, Any] = {}
        self._next = 0
        self.version = 0

    def copy(self) -> "_SymEnv":
        clone = _SymEnv()
        clone._parent = dict(self._parent)
        clone._const = dict(self._const)
        clone._next = self._next
        clone.version = self.version
        return clone

    def fresh(self) -> int:
        sym = self._next
        self._next += 1
        self._parent[sym] = sym
        return sym

    def find(self, sym: int) -> int:
        parent = self._parent[sym]
        if parent != sym:
            root = self.find(parent)
            self._parent[sym] = root
            return root
        return sym

    def const_of(self, sym: int) -> Any:
        """The constant bound to sym's class, or UNNAMED when unbound."""
        return self._const.get(self.find(sym), UNNAMED)

    def bind(self, sym: int, constant: Any) -> bool:
        """Bind sym's class to a constant; False on clash."""
        root = self.find(sym)
        existing = self._const.get(root, UNNAMED)
        if existing is not UNNAMED:
            return existing == constant
        self._const[root] = constant
        self.version += 1
        return True

    def unify(self, left: int, right: int) -> bool:
        """Merge the classes; False when two distinct constants clash."""
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return True
        left_const = self._const.get(left_root, UNNAMED)
        right_const = self._const.get(right_root, UNNAMED)
        if (
            left_const is not UNNAMED
            and right_const is not UNNAMED
            and left_const != right_const
        ):
            return False
        self._parent[left_root] = right_root
        if left_const is not UNNAMED:
            self._const[right_root] = left_const
        self.version += 1
        return True

    def same(self, left: int, right: int) -> bool:
        return self.find(left) == self.find(right)

    def forced_equal(self, left: int, right: int) -> bool:
        """Are the two symbols forced to denote the same value — same class
        or both pinned to one constant?"""
        if self.same(left, right):
            return True
        left_const = self.const_of(left)
        return left_const is not UNNAMED and left_const == self.const_of(right)


SourceTuple = PyTuple[str, Dict[str, int]]  # (relation, attr → sym)
Alternative = PyTuple[List[SourceTuple], "_SymEnv"]


def _condition_constraints(condition: Condition) -> List[PyTuple[str, Any, bool]]:
    """Flatten a conjunction of equalities into (left, right, right_is_attr)."""
    if isinstance(condition, TrueCondition):
        return []
    if isinstance(condition, And):
        out: List[PyTuple[str, Any, bool]] = []
        for part in condition.parts:
            out.extend(_condition_constraints(part))
        return out
    if isinstance(condition, Comparison) and condition.op == "=":
        left, right = condition.left, condition.right
        if isinstance(left, Attr) and isinstance(right, Const):
            return [(left.name, right.value, False)]
        if isinstance(left, Const) and isinstance(right, Attr):
            return [(right.name, left.value, False)]
        if isinstance(left, Attr) and isinstance(right, Attr):
            return [(left.name, right.name, True)]
    raise QueryError(
        "propagation supports selection conditions that are conjunctions of "
        f"equalities only; got {condition!r}"
    )


def _invert(
    query: Query,
    db_schema: DatabaseSchema,
    out_syms: Dict[str, int],
    env: _SymEnv,
) -> List[Alternative]:
    """All source tableaux that can produce one view tuple with ``out_syms``."""
    if isinstance(query, Base):
        return [([(query.relation_name, dict(out_syms))], env)]
    if isinstance(query, Rename):
        child_schema = query.child.output_schema(db_schema)
        reverse = {new: old for old, new in query.mapping.items()}
        child_syms = {
            reverse.get(attr, attr): sym for attr, sym in out_syms.items()
        }
        return _invert(query.child, db_schema, child_syms, env)
    if isinstance(query, Select):
        alternatives = _invert(query.child, db_schema, out_syms, env)
        surviving: List[Alternative] = []
        for tableau, alt_env in alternatives:
            alt_env = alt_env.copy()
            ok = True
            for left, right, right_is_attr in _condition_constraints(query.condition):
                if right_is_attr:
                    ok = alt_env.unify(out_syms[left], out_syms[right])
                else:
                    ok = alt_env.bind(out_syms[left], right)
                if not ok:
                    break
            if ok:
                surviving.append((tableau, alt_env))
        return surviving
    if isinstance(query, Project):
        child_schema = query.child.output_schema(db_schema)
        child_syms: Dict[str, int] = {}
        for attr in child_schema.attribute_names:
            if attr in out_syms:
                child_syms[attr] = out_syms[attr]
            else:
                child_syms[attr] = env.fresh()
        return _invert(query.child, db_schema, child_syms, env)
    if isinstance(query, Product):
        left_schema = query.left.output_schema(db_schema)
        left_syms = {
            a: out_syms[a] for a in left_schema.attribute_names
        }
        right_schema = query.right.output_schema(db_schema)
        right_syms = {
            a: out_syms[a] for a in right_schema.attribute_names
        }
        combined: List[Alternative] = []
        for left_tab, env1 in _invert(query.left, db_schema, left_syms, env):
            for right_tab, env2 in _invert(query.right, db_schema, right_syms, env1):
                combined.append((left_tab + right_tab, env2))
        return combined
    if isinstance(query, Union):
        return _invert(query.left, db_schema, out_syms, env.copy()) + _invert(
            query.right, db_schema, out_syms, env.copy()
        )
    if isinstance(query, Extend):
        env = env.copy()
        if not env.bind(out_syms[query.attribute.name], query.value):
            return []  # the view tuple cannot come from this branch
        child_syms = {
            attr: sym
            for attr, sym in out_syms.items()
            if attr != query.attribute.name
        }
        return _invert(query.child, db_schema, child_syms, env)
    if isinstance(query, Difference):
        raise QueryError("propagation is defined for SPCU views (no difference)")
    raise QueryError(f"unsupported query node {type(query).__name__}")


def _chase(
    tableau: List[SourceTuple], env: _SymEnv, rows: List[PyTuple[CFD, PatternTuple]]
) -> bool:
    """Chase to fixpoint.  Returns False when a contradiction arises (the
    hypothesis is unsatisfiable — vacuous propagation for this branch)."""
    changed = True
    while changed:
        changed = False
        before = env.version
        for cfd, tp in rows:
            members = [syms for rel, syms in tableau if rel == cfd.relation_name]
            for s1, s2 in itertools.product(members, repeat=2):
                # forced LHS match?
                applies = True
                for attr in cfd.lhs:
                    if not env.forced_equal(s1[attr], s2[attr]):
                        applies = False
                        break
                    expected = tp.get(attr)
                    if expected is not UNNAMED and env.const_of(s1[attr]) != expected:
                        applies = False
                        break
                if not applies:
                    continue
                for attr in cfd.rhs:
                    if not env.unify(s1[attr], s2[attr]):
                        return False
                    expected = tp.get(attr)
                    if expected is not UNNAMED:
                        if not env.bind(s1[attr], expected):
                            return False
            if env.version != before:
                changed = True
                before = env.version
    return True


def propagates(
    db_schema: DatabaseSchema,
    sigma: Sequence[CFD | FD],
    view: Query,
    target: CFD,
) -> bool:
    """Decide Σ ⊨σ ϕ for source CFDs/FDs, an SPCU view and a view CFD."""
    source_rows: List[PyTuple[CFD, PatternTuple]] = []
    for dep in sigma:
        cfd = fd_as_cfd(dep) if isinstance(dep, FD) else dep
        for tp in cfd.tableau:
            source_rows.append((cfd, tp))
    view_schema = view.output_schema(db_schema)
    target.check_schema(view_schema)

    for tp in target.tableau:
        env = _SymEnv()
        v1: Dict[str, int] = {}
        v2: Dict[str, int] = {}
        for attr in view_schema.attribute_names:
            v1[attr] = env.fresh()
            v2[attr] = env.fresh()
        ok = True
        for attr in target.lhs:
            ok = env.unify(v1[attr], v2[attr])
            expected = tp.get(attr)
            if ok and expected is not UNNAMED:
                ok = env.bind(v1[attr], expected)
            if not ok:
                break
        if not ok:
            continue  # hypothesis unsatisfiable for this row
        for tab1, env1 in _invert(view, db_schema, v1, env):
            for tab2, env2 in _invert(view, db_schema, v2, env1):
                branch_env = env2.copy()
                if not _chase(tab1 + tab2, branch_env, source_rows):
                    continue  # contradictory branch: vacuously fine
                for attr in target.rhs:
                    expected = tp.get(attr)
                    if not branch_env.forced_equal(v1[attr], v2[attr]):
                        return False
                    if (
                        expected is not UNNAMED
                        and branch_env.const_of(v1[attr]) != expected
                    ):
                        return False
    return True


def propagated_cfds(
    db_schema: DatabaseSchema,
    sigma: Sequence[CFD | FD],
    view: Query,
    candidates: Sequence[CFD],
) -> List[CFD]:
    """Filter a candidate list down to the view CFDs propagated from Σ."""
    return [c for c in candidates if propagates(db_schema, sigma, view, c)]
