"""Dependency propagation through SPCU views (paper §4.1, Theorem 4.7)
and automatic view-CFD derivation ([37])."""

from repro.propagation.derive import candidate_view_cfds, derive_view_cfds, view_tags
from repro.propagation.propagate import propagated_cfds, propagates
from repro.propagation.views import select_project_view, tagged_union_view

__all__ = [
    "candidate_view_cfds",
    "derive_view_cfds",
    "propagated_cfds",
    "propagates",
    "select_project_view",
    "tagged_union_view",
    "view_tags",
]
