"""Wire-protocol versioning for the constraint service.

Every endpoint is mounted under a version prefix (``/v1/...``) and every
JSON response carries its wire version in the envelope — the first key of
the document is ``"wire_version"``.  The version covers the *shape* of
the documents (field names, the ``{"engine": ...}`` object, error bodies),
not their values; a client that pins ``wire_version == 1`` is insulated
from future breaking changes, which will mount as ``/v2`` alongside.

Migration affordances for pre-versioning clients (one release):

* an unversioned path (``GET /healthz``) answers ``301 Moved Permanently``
  to the same path under ``/v1`` (query string preserved) with a
  ``Deprecation: true`` header — stdlib/urllib and curl follow it
  transparently for GETs;
* an *unknown* version prefix (``/v2/...``) answers 404 with a document
  naming the versions this server speaks, so a too-new client fails with
  an actionable error instead of a bare route miss.

Shared by both transports (the asyncio front end and the legacy threaded
server) so their wire bytes stay identical.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Mapping, Optional, Tuple

__all__ = [
    "WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "envelope",
    "split_wire_version",
    "unsupported_version_document",
]

#: the wire version this server speaks; bump on breaking document changes
WIRE_VERSION = 1

#: every version prefix the server will route (currently just /v1)
SUPPORTED_WIRE_VERSIONS: Tuple[int, ...] = (WIRE_VERSION,)

#: a path segment that *claims* to be a version prefix: "v" + digits
_VERSION_SEGMENT = re.compile(r"^v(\d+)$")


def envelope(document: Mapping[str, Any]) -> Dict[str, Any]:
    """Wrap a response document in the versioned envelope.

    ``wire_version`` is injected as the *first* key so the version is
    readable in truncated logs and streamed output; an explicit
    ``wire_version`` already in ``document`` (never the case for library
    documents) would be overridden by the canonical one.
    """
    wrapped: Dict[str, Any] = {"wire_version": WIRE_VERSION}
    wrapped.update(document)
    wrapped["wire_version"] = WIRE_VERSION
    return wrapped


def split_wire_version(path: str) -> Tuple[Optional[int], str]:
    """Split a request path into (claimed wire version, remaining path).

    ``/v1/sessions/x`` -> ``(1, "/sessions/x")``; a path whose first
    segment is not ``v<digits>`` returns ``(None, path)`` untouched.
    Only the first segment is inspected — a *session* named ``v1`` is
    addressable as ``/v1/sessions/v1``.
    """
    segments = [p for p in path.split("/") if p]
    if segments:
        match = _VERSION_SEGMENT.match(segments[0])
        if match is not None:
            rest = "/" + "/".join(segments[1:])
            return int(match.group(1)), rest
    return None, path


def unsupported_version_document(version: int) -> Dict[str, Any]:
    """The 404 body for a version prefix this server does not speak."""
    return {
        "error": (
            f"wire version {version} is not supported by this server; "
            f"supported versions: "
            f"{', '.join(f'/v{v}' for v in SUPPORTED_WIRE_VERSIONS)}"
        ),
        "type": "UnsupportedWireVersion",
        "requested_version": version,
        "supported_versions": list(SUPPORTED_WIRE_VERSIONS),
    }
