"""Hosted-session state shared by both server transports.

:class:`HostedSession` (one warm session + its lock, undo-token table,
degraded gating and durability journal), :class:`SessionManager` (the
LRU table with eviction tombstones and lazy rehydration) and
:class:`ServerMetrics` (thread-safe request counters) are transport
agnostic: the asyncio front end (:mod:`repro.server.aio`) and the legacy
threaded server (:mod:`repro.server`) both host their sessions here, so
durability, eviction and degraded semantics are identical across them.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.engine.config import engine_config_from_document
from repro.engine.delta import Changeset
from repro.errors import (
    DependencyError,
    ReproError,
    SchemaError,
)
from repro.relational.csvio import load_csv
from repro.relational.instance import DatabaseInstance
from repro.server.durability import (
    DEFAULT_SNAPSHOT_EVERY,
    MAX_UNDO_TOKENS,
    SessionJournal,
    SessionStore,
)
from repro.server.metrics import LATENCY_BUCKETS
from repro.session import Session

__all__ = [
    "DEFAULT_DEGRADED_AFTER",
    "HostedSession",
    "SessionManager",
    "ServerMetrics",
    "UnknownSessionError",
    "DuplicateSessionError",
    "SessionDegradedError",
]

#: consecutive server-side handler failures before a session is degraded
DEFAULT_DEGRADED_AFTER = 5

#: a lock acquired slower than this waited on another request (an
#: uncontended ``threading.Lock`` acquires in well under a microsecond)
_CONTENDED_LOCK_WAIT = 0.001

#: DeltaStats counters aggregated into /metrics and per-session diagnostics
_DELTA_STAT_FIELDS = (
    "batches",
    "ops_applied",
    "keys_patched",
    "keys_reevaluated",
    "inclusion_keys_touched",
    "fallback_rescans",
)


class UnknownSessionError(ReproError):
    """No hosted session under the requested id (HTTP 404)."""


class DuplicateSessionError(ReproError):
    """A session with the requested id already exists (HTTP 409)."""


class SessionDegradedError(ReproError):
    """The session is degraded; the verb was not run (HTTP 503).

    ``document`` is the degraded-state body merged into the error
    response under ``"degraded"``.
    """

    def __init__(
        self, message: str, document: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.document: Dict[str, Any] = document or {}


class HostedSession:
    """One warm session plus the server-side state that wraps it.

    ``lock`` serializes every request that touches the session — the delta
    engine and the warm parallel executor are single-writer structures, so
    concurrent requests against one session queue here while requests
    against other sessions proceed on their own locks.
    """

    __slots__ = (
        "id",
        "session",
        "lock",
        "created",
        "last_used",
        "requests",
        "journal",
        "_undo",
        "_undo_counter",
        "undo_tokens_view",
        "failures",
        "degraded_since",
        "degraded_total",
        "last_error",
        "probe_in_flight",
        "lock_acquisitions",
        "lock_wait_seconds_total",
        "lock_wait_seconds_max",
        "lock_contended",
        "closed",
    )

    def __init__(
        self,
        session_id: str,
        session: Session,
        journal: Optional[SessionJournal] = None,
        undo: Optional["OrderedDict[str, Changeset]"] = None,
        undo_counter: int = 0,
    ) -> None:
        self.id = session_id
        self.session = session
        self.lock = threading.Lock()
        self.created = time.time()
        self.last_used = self.created
        self.requests = 0
        self.journal = journal
        self._undo: "OrderedDict[str, Changeset]" = (
            undo if undo is not None else OrderedDict()
        )
        self._undo_counter = undo_counter
        #: immutable published copy of the token order; lock-free readers
        #: (``info`` and the async snapshot layer) read this instead of
        #: iterating ``_undo`` while a write verb mutates it
        self.undo_tokens_view: Tuple[str, ...] = tuple(self._undo)
        #: degraded gating: consecutive 5xx-class handler failures
        self.failures = 0
        self.degraded_since: Optional[float] = None
        self.degraded_total = 0
        self.last_error: Optional[str] = None
        self.probe_in_flight = False
        #: lock-wait aggregates for the diagnostics endpoint
        self.lock_acquisitions = 0
        self.lock_wait_seconds_total = 0.0
        self.lock_wait_seconds_max = 0.0
        self.lock_contended = 0
        #: set (under ``lock``) when eviction/removal closed this object;
        #: a handler that won the lock after a close must re-resolve the
        #: session id instead of running on a dead engine
        self.closed = False

    def touch(self) -> None:
        self.last_used = time.time()
        self.requests += 1

    # repro: lock-held — verb handlers call this under ``self.lock``
    def remember_undo(self, undo: Changeset) -> str:
        """Store an undo changeset; returns its single-use token.

        This is the *only* place the ``MAX_UNDO_TOKENS`` bound is
        enforced — tokens leave the table through :meth:`consume_undo`
        (successful replay), :meth:`clear_undo` (instance swap) or the
        LRU eviction here, never by re-insertion, so the eviction order
        is exactly token-creation order.
        """
        self._undo_counter += 1
        token = f"undo-{self._undo_counter}"
        self._undo[token] = undo
        while len(self._undo) > MAX_UNDO_TOKENS:
            self._undo.popitem(last=False)
        self.undo_tokens_view = tuple(self._undo)
        return token

    def peek_undo(self, token: str) -> Changeset:
        """Read a stored undo changeset without consuming the token.

        The token keeps its position in the eviction order: a failed
        replay must not promote an old token over newer ones (that would
        change which token :meth:`remember_undo` evicts next).
        """
        try:
            return self._undo[token]
        except KeyError:
            raise ReproError(
                f"unknown or already-used undo token {token!r}"
            ) from None

    # repro: lock-held — verb handlers call this under ``self.lock``
    def consume_undo(self, token: str) -> None:
        """Retire a token after its replay succeeded (tokens are
        single-use)."""
        self._undo.pop(token, None)
        self.undo_tokens_view = tuple(self._undo)

    # repro: lock-held — verb handlers call this under ``self.lock``
    def clear_undo(self) -> None:
        """Drop every stored token — the instance they were recorded
        against has been replaced (e.g. ``repair(adopt=True)``)."""
        self._undo.clear()
        self.undo_tokens_view = ()

    def undo_state(self) -> Tuple[List[Tuple[str, Changeset]], int]:
        """Copy of the token table + counter, for journal-failure rollback."""
        return list(self._undo.items()), self._undo_counter

    # repro: lock-held — rollback paths call this under ``self.lock``
    def restore_undo_state(
        self, state: Tuple[List[Tuple[str, Changeset]], int]
    ) -> None:
        """Put the token table back exactly as :meth:`undo_state` saw it."""
        items, counter = state
        self._undo.clear()
        self._undo.update(items)
        self._undo_counter = counter
        self.undo_tokens_view = tuple(self._undo)

    # -- durability (all called under ``lock``) --------------------------

    def persist_apply(
        self, changeset_doc: Mapping[str, Any], token: str
    ) -> None:
        """WAL a successful apply (fsync'd before the response commits)."""
        self._persist_record(
            lambda journal: journal.log_apply(changeset_doc, token)
        )

    def persist_undo(self, taken: str, token: str) -> None:
        """WAL a successful undo replay."""
        self._persist_record(lambda journal: journal.log_undo(taken, token))

    def persist_rules(
        self, rules_docs: List[Dict[str, Any]], replace: bool
    ) -> None:
        """WAL a rules replace/append."""
        self._persist_record(
            lambda journal: journal.log_rules(rules_docs, replace)
        )

    def persist_snapshot(self) -> None:
        """Capture full session state now, retiring the WAL generation."""
        if self.journal is not None:
            self.journal.write_snapshot(
                self.session, list(self._undo.items()), self._undo_counter
            )

    def _persist_record(self, append: Any) -> None:
        """Make one write verb durable: a WAL append, normally.

        A *blocked* journal (an earlier append left bytes it could not
        remove, or a snapshot failed with memory ahead of disk) cannot
        take appends; a full snapshot both captures this write — the
        in-memory mutation and its undo token land before this runs —
        and reopens a fresh WAL generation, clearing the block.  Either
        path raising means the write did not durably commit; the handler
        rolls the in-memory mutation back and the client sees the error.
        """
        if self.journal is None:
            return
        if self.journal.blocked is not None:
            self.persist_snapshot()
            return
        append(self.journal)
        self._maybe_snapshot()

    def _maybe_snapshot(self) -> None:
        if (
            self.journal is not None
            and self.journal.wal_records >= self.journal.store.snapshot_every
        ):
            try:
                self.persist_snapshot()
            except Exception:
                # the triggering write is already durable in the WAL, so a
                # failed cadence snapshot must not fail its request; the
                # WAL stays open and the next write retries (via the
                # journal's blocked fallback in ``_persist_record``)
                self.journal.store._count("snapshot_failures_total")

    # -- degraded gating (mutations under ``lock``) ----------------------

    @property
    def is_degraded(self) -> bool:
        return self.degraded_since is not None

    # repro: lock-held — the gated-verb path calls this under ``self.lock``
    def record_failure(self, message: str, threshold: int) -> bool:
        """Count one server-side (5xx-class) handler failure.

        Returns True exactly when this failure crossed ``threshold``
        consecutive failures and moved the session into the degraded
        state."""
        self.failures += 1
        self.last_error = message
        if self.degraded_since is None and self.failures >= threshold:
            self.degraded_since = time.time()
            self.degraded_total += 1
            return True
        return False

    # repro: lock-held — the gated-verb path calls this under ``self.lock``
    def record_success(self) -> bool:
        """Reset the failure counters after a verb succeeded.

        Returns True when this success was a recovery probe clearing a
        degraded session."""
        recovered = self.degraded_since is not None
        self.failures = 0
        self.degraded_since = None
        self.last_error = None
        return recovered

    def degraded_document(self) -> Dict[str, Any]:
        """The state document served under ``"degraded"`` in 503 bodies."""
        since = self.degraded_since
        return {
            "session": self.id,
            "degraded": since is not None,
            "consecutive_failures": self.failures,
            "degraded_seconds": (
                time.time() - since if since is not None else 0.0
            ),
            "last_error": self.last_error,
        }

    # repro: lock-held — the gated-verb path calls this right after acquiring
    def note_lock_wait(self, seconds: float) -> None:
        """Aggregate how long this request queued for the session lock."""
        self.lock_acquisitions += 1
        self.lock_wait_seconds_total += seconds
        if seconds > self.lock_wait_seconds_max:
            self.lock_wait_seconds_max = seconds
        if seconds >= _CONTENDED_LOCK_WAIT:
            self.lock_contended += 1

    def diagnostics(self) -> Dict[str, Any]:
        """The deep per-session document (``GET /sessions/{id}/diagnostics``):
        engine cache + delta stats, lock-wait aggregates, degraded state,
        durability generation and WAL depth."""
        with self.lock:
            session = self.session
            engine = session.warm_engine
            engine_doc: Dict[str, Any] = {
                "warm_delta_engine": engine is not None,
                "warm_parallel_executor": session.has_warm_parallel,
                "executor": session.executor,
                "shards": session.shards,
                "maintained_violations": None,
                "delta_stats": None,
            }
            if engine is not None:
                engine_doc["maintained_violations"] = engine.total_violations()
                engine_doc["delta_stats"] = {
                    field: getattr(engine.stats, field)
                    for field in _DELTA_STAT_FIELDS
                }
            degraded = self.degraded_document()
            degraded["degraded_total"] = self.degraded_total
            return {
                "session": self.id,
                "relations": {
                    rel.schema.name: len(rel) for rel in session.database
                },
                "rules": len(session.rules),
                "requests": self.requests,
                "age_seconds": time.time() - self.created,
                "idle_seconds": time.time() - self.last_used,
                "engine": engine_doc,
                "locks": {
                    "acquisitions": self.lock_acquisitions,
                    "wait_seconds_total": self.lock_wait_seconds_total,
                    "wait_seconds_max": self.lock_wait_seconds_max,
                    "contended": self.lock_contended,
                },
                "degraded": degraded,
                "undo_tokens": list(self._undo),
                "durability": (
                    self.journal.status(session)
                    if self.journal is not None
                    else {"enabled": False}
                ),
            }

    def info(self) -> Dict[str, Any]:
        """The session info document — built *without* the session lock.

        ``GET /sessions`` enumerates every hosted session through this
        method; taking each session's lock here would let one wedged
        verb handler hang the whole listing (and, transitively, every
        client polling it).  Every field is safe to read dirty:

        * scalars (``executor``, ``requests``, degraded flags, journal
          generation) are single attribute reads — atomic in CPython;
        * ``undo_tokens`` reads the immutable ``undo_tokens_view`` tuple
          republished under the lock on every token-table mutation;
        * relation row counts are ``len()`` over containers that are
          mutated (never replaced mid-iteration) by write verbs — a
          listing racing an apply may be one batch stale, which is the
          documented read-snapshot semantics of the listing endpoints.
        """
        session = self.session
        return {
            "session": self.id,
            "relations": {
                rel.schema.name: len(rel) for rel in session.database
            },
            "rules": len(session.rules),
            "executor": session.executor,
            "shards": session.shards,
            "warm_engine": session.has_warm_engine,
            "warm_parallel": session.has_warm_parallel,
            "degraded": self.is_degraded,
            "requests": self.requests,
            "age_seconds": time.time() - self.created,
            "idle_seconds": time.time() - self.last_used,
            "undo_tokens": list(self.undo_tokens_view),
            "durability": (
                self.journal.status(session)
                if self.journal is not None
                else {"enabled": False}
            ),
        }


class SessionManager:
    """The table of hosted sessions: create / resolve / evict.

    LRU order is maintained on every resolve; when the table grows past
    ``max_sessions`` the least-recently-used session is closed and dropped.
    All table mutations hold the manager lock; the per-session work itself
    runs under each :class:`HostedSession`'s own lock.
    """

    def __init__(
        self,
        max_sessions: int = 64,
        data_root: Optional[Path] = None,
        state_dir: Optional[Path] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = True,
    ) -> None:
        if max_sessions < 1:
            raise ReproError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.data_root = Path(data_root) if data_root is not None else Path.cwd()
        self._data_root_resolved = self.data_root.resolve()
        self.store: Optional[SessionStore] = (
            SessionStore(Path(state_dir), snapshot_every=snapshot_every, fsync=fsync)
            if state_dir is not None
            else None
        )
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[str, HostedSession]" = OrderedDict()
        #: session ids mid-rehydration → event the losers wait on; guarded
        #: by the manager lock (the recovery itself runs outside it)
        self._rehydrating: Dict[str, threading.Event] = {}
        #: session ids mid-eviction (popped from the table, flush-and-close
        #: still running outside the lock) → event; resolution must wait for
        #: the flush to land before rehydrating, or it races the snapshot
        #: retirement and reads state missing the victim's in-flight verb
        self._evicting: Dict[str, threading.Event] = {}
        self._auto_counter = 0
        self.created_total = 0
        self.evicted_total = 0
        self.closed_total = 0

    # -- resolution ------------------------------------------------------

    def get(self, session_id: str) -> HostedSession:
        while True:
            evicting: Optional[threading.Event] = None
            with self._lock:
                hosted = self._sessions.get(session_id)
                if hosted is not None:
                    self._sessions.move_to_end(session_id)
                    hosted.touch()
                    return hosted
                evicting = self._evicting.get(session_id)
            if evicting is not None:
                # the session was just popped by LRU pressure and its
                # flush-and-close is still running; re-resolve once the
                # on-disk state is complete (rehydrating mid-flush reads
                # a snapshot generation the flush is about to retire)
                evicting.wait()
                continue
            with self._lock:
                hosted = self._sessions.get(session_id)
                if hosted is not None:
                    self._sessions.move_to_end(session_id)
                    hosted.touch()
                    return hosted
                if session_id in self._evicting:
                    continue
                if self.store is None or not self.store.exists(session_id):
                    raise UnknownSessionError(
                        f"no session {session_id!r}; open sessions: "
                        f"{list(self._sessions)}"
                    ) from None
                event = self._rehydrating.get(session_id)
                if event is None:
                    # claim the rehydration; recovery runs outside the lock
                    event = threading.Event()
                    self._rehydrating[session_id] = event
                    claimed = True
                else:
                    claimed = False
            if not claimed:
                # another request is recovering this session — wait for it
                # to land (or fail), then re-resolve from the table
                event.wait()
                continue
            try:
                hosted = self._rehydrate(session_id)
            finally:
                with self._lock:
                    self._rehydrating.pop(session_id, None)
                event.set()
            if hosted is not None:
                return hosted
            # lost a remove()/purge race after claiming — report 404

    def _rehydrate(self, session_id: str) -> Optional[HostedSession]:
        """Recover a cold durable session and publish it in the table."""
        assert self.store is not None
        try:
            journal, recovered = self.store.recover(session_id)
        except FileNotFoundError:
            return None
        hosted = HostedSession(
            session_id,
            recovered.session,
            journal=journal,
            undo=recovered.undo,
            undo_counter=recovered.undo_counter,
        )
        evicted: List[HostedSession] = []
        with hosted.lock:
            with self._lock:
                existing = self._sessions.get(session_id)
                if existing is not None:
                    # a concurrent create() won the id; its state superseded
                    # the on-disk copy we just read
                    journal.close()
                    recovered.session.close()
                    existing.touch()
                    return existing
                self._sessions[session_id] = hosted
                hosted.touch()
                while len(self._sessions) > self.max_sessions:
                    _, lru = self._sessions.popitem(last=False)
                    if lru is hosted:
                        # pathological max_sessions=1 churn: keep the
                        # session we were asked for, drop nothing else
                        self._sessions[session_id] = hosted
                        break
                    evicted.append(lru)
                    self._evicting[lru.id] = threading.Event()
                    self.evicted_total += 1
            if recovered.wal_records >= journal.store.snapshot_every:
                # long tail replayed — fold it into a snapshot now rather
                # than replaying it again on the next restart
                hosted.persist_snapshot()
        self._evict_all(evicted)
        return hosted

    def _evict_all(self, evicted: List[HostedSession]) -> None:
        """Flush-and-close popped LRU victims, then release their
        eviction tombstones so waiting resolvers may rehydrate."""
        for lru in evicted:
            try:
                self._flush_and_close(lru)
            finally:
                with self._lock:
                    event = self._evicting.pop(lru.id, None)
                if event is not None:
                    event.set()

    def list(self) -> List[HostedSession]:
        with self._lock:
            return list(self._sessions.values())

    def cold_session_ids(self) -> List[str]:
        """Durable sessions on disk but not currently resident."""
        if self.store is None:
            return []
        with self._lock:
            resident = set(self._sessions)
            pending = set(self._rehydrating)
        return [
            sid
            for sid in self.store.session_ids()
            if sid not in resident and sid not in pending
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- lifecycle -------------------------------------------------------

    def _resolve_path(self, path: str) -> Path:
        """Resolve a client-supplied server-side path inside ``data_root``.

        Clients name schema/rules/CSV files by path; the data root is the
        confinement boundary.  Absolute paths and ``..`` traversal are
        rejected *after* resolving symlinks, so a link pointing outside
        the root does not slip through either.
        """
        candidate = Path(path)
        if not candidate.is_absolute():
            candidate = self.data_root / candidate
        resolved = candidate.resolve()
        if not resolved.is_relative_to(self._data_root_resolved):
            raise ReproError(
                f"server-side path {path!r} escapes the data root "
                f"{str(self.data_root)!r}"
            )
        return resolved

    def _build_session(self, document: Mapping[str, Any]) -> Session:
        from repro.rules_json import (
            database_schema_from_dict,
            load_database_schema,
            load_rules,
            rules_from_list,
        )

        schema_doc = document.get("schema")
        if isinstance(schema_doc, str):
            db_schema = load_database_schema(self._resolve_path(schema_doc))
        elif isinstance(schema_doc, Mapping):
            db_schema = database_schema_from_dict(schema_doc)
        else:
            raise SchemaError(
                "session document needs a 'schema' (inline document or "
                "server-side path)"
            )

        rules_doc = document.get("rules")
        if rules_doc is None:
            rules: List[Any] = []
        elif isinstance(rules_doc, str):
            rules = load_rules(self._resolve_path(rules_doc), db_schema)
        elif isinstance(rules_doc, (list, tuple)):
            rules = rules_from_list(rules_doc, db_schema)
        else:
            raise DependencyError(
                "'rules' must be a rules list or a server-side path"
            )

        db = DatabaseInstance(db_schema)
        data = document.get("data") or {}
        if not isinstance(data, Mapping):
            raise SchemaError(
                "'data' must map relation names to row lists or CSV paths"
            )
        for rel_name, payload in data.items():
            relation = db.relation(rel_name)
            if isinstance(payload, str):
                for t in load_csv(relation.schema, self._resolve_path(payload)):
                    relation.add(t)
            elif isinstance(payload, (list, tuple)):
                for row in payload:
                    relation.add(row)
            else:
                raise SchemaError(
                    f"data for relation {rel_name!r} must be a row list or "
                    "a server-side CSV path"
                )

        # the unified engine schema (shared with Session kwargs and the
        # CLI flags): {"engine": {"executor": ..., "shards": ...}}
        executor, shards = engine_config_from_document(
            document, default_executor="indexed"
        )
        return Session.from_instance(db, rules, executor=executor, shards=shards)

    def create(self, document: Mapping[str, Any]) -> HostedSession:
        """Build and register a session from a creation document.

        The session is built *outside* the manager lock (data upload and
        index construction can be slow); only the table insert and any
        LRU eviction hold it.
        """
        session_id = document.get("id")
        if session_id is not None and not isinstance(session_id, str):
            raise ReproError(f"'id' must be a string, got {session_id!r}")
        if session_id == "":
            raise ReproError("'id' must be a non-empty string")
        if session_id is not None:
            # fail fast before paying the data upload / instance build;
            # the post-build check below still covers a create/create race
            with self._lock:
                if session_id in self._sessions:
                    raise DuplicateSessionError(
                        f"session {session_id!r} already exists; DELETE it "
                        "first or create under a fresh id"
                    )
            if self.store is not None and self.store.exists(session_id):
                raise DuplicateSessionError(
                    f"session {session_id!r} already exists (durable state "
                    "on disk); DELETE it first or create under a fresh id"
                )
        session = self._build_session(document)
        evicted: List[HostedSession] = []
        hosted: Optional[HostedSession] = None
        try:
            with self._lock:
                if session_id is None:
                    self._auto_counter += 1
                    session_id = f"s{self._auto_counter}"
                    while session_id in self._sessions or (
                        self.store is not None and self.store.exists(session_id)
                    ):
                        self._auto_counter += 1
                        session_id = f"s{self._auto_counter}"
                elif session_id in self._sessions:
                    raise DuplicateSessionError(
                        f"session {session_id!r} already exists; DELETE it "
                        "first or create under a fresh id"
                    )
                hosted = HostedSession(session_id, session)
                self._sessions[session_id] = hosted
                self.created_total += 1
                while len(self._sessions) > self.max_sessions:
                    _, lru = self._sessions.popitem(last=False)
                    evicted.append(lru)
                    self._evicting[lru.id] = threading.Event()
                    self.evicted_total += 1
            if self.store is not None:
                # hold the session lock across the durable create so no
                # request can land on the published session before its
                # journal (and gen-0 snapshot) exists
                with hosted.lock:
                    try:
                        hosted.journal = self.store.create(session_id, session)
                    except FileExistsError:
                        raise DuplicateSessionError(
                            f"session {session_id!r} already exists (durable "
                            "state on disk); DELETE it first or create under "
                            "a fresh id"
                        ) from None
        except BaseException:
            if hosted is not None:
                with self._lock:
                    if self._sessions.get(session_id) is hosted:
                        del self._sessions[session_id]
                        self.created_total -= 1
            session.close()
            raise
        finally:
            # Close outside the manager lock: an in-flight request may hold
            # the session lock, and closing must wait for it, not block the
            # whole table.  Runs on the failure path too — the victims were
            # already popped, and resolvers are waiting on their tombstones.
            self._evict_all(evicted)
        return hosted

    def remove(self, session_id: str) -> str:
        """Close and drop a session; durable state on disk is purged too.

        Returns the removed session id — the session object itself may
        never have been resident (cold durable session)."""
        while True:
            with self._lock:
                hosted = self._sessions.pop(session_id, None)
                event = self._rehydrating.get(session_id)
                if event is None:
                    event = self._evicting.get(session_id)
                if hosted is None and event is None:
                    if self.store is None or not self.store.exists(session_id):
                        raise UnknownSessionError(
                            f"no session {session_id!r}; open sessions: "
                            f"{list(self._sessions)}"
                        ) from None
                if hosted is not None:
                    self.closed_total += 1
            if hosted is None and event is not None:
                # a rehydration or eviction flush is in flight; let it
                # land, then remove whatever it produced
                event.wait()
                continue
            break
        if hosted is not None:
            with hosted.lock:
                hosted.closed = True
                if hosted.journal is not None:
                    hosted.journal.close()
                hosted.session.close()
        if self.store is not None:
            self.store.purge(session_id)
            if hosted is None:
                with self._lock:
                    self.closed_total += 1
        return session_id

    def close_all(self) -> None:
        """Flush every dirty journal and close every session (shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for hosted in sessions:
            self._flush_and_close(hosted)

    def _flush_and_close(self, hosted: HostedSession) -> None:
        """Eviction/shutdown path: snapshot pending state, then close.

        With durability on, eviction means *flush then drop* — the session
        leaves memory but stays recoverable (and is lazily rehydrated on
        the next request that names it)."""
        with hosted.lock:
            hosted.closed = True
            journal = hosted.journal
            if journal is not None:
                if journal.needs_flush or hosted.session.dirty:
                    try:
                        hosted.persist_snapshot()
                        journal.store._count("flushed_total")
                    except Exception:
                        # every acknowledged write is already durable in
                        # the snapshot + WAL on disk; a failed eviction
                        # flush only loses the chance to fold the WAL
                        # tail into a snapshot before dropping the session
                        journal.store._count("snapshot_failures_total")
                journal.close()
            hosted.session.close()


class ServerMetrics:
    """Thread-safe request counters: totals, statuses, per-endpoint latency
    (with Prometheus-style histogram buckets) and named ops counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_total = 0
        self.responses: Dict[str, int] = {}
        self.endpoints: Dict[str, Dict[str, float]] = {}
        #: per-endpoint latency observations, one slot per LATENCY_BUCKETS
        #: bound plus the trailing +Inf overflow slot
        self._buckets: Dict[str, List[int]] = {}
        #: named operational counters (degraded gating lifecycle)
        self.counters: Dict[str, int] = {
            "handler_failures_total": 0,
            "degraded_total": 0,
            "probes_total": 0,
            "recoveries_total": 0,
            "rejected_total": 0,
        }

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            self.requests_total += 1
            key = str(status)
            self.responses[key] = self.responses.get(key, 0) + 1
            stats = self.endpoints.setdefault(
                endpoint, {"count": 0, "seconds_total": 0.0, "seconds_max": 0.0}
            )
            stats["count"] += 1
            stats["seconds_total"] += seconds
            stats["seconds_max"] = max(stats["seconds_max"], seconds)
            buckets = self._buckets.setdefault(
                endpoint, [0] * (len(LATENCY_BUCKETS) + 1)
            )
            for index, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    buckets[index] += 1
                    break
            else:
                buckets[-1] += 1

    def count(self, name: str) -> None:
        """Bump one named operational counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + 1

    def counters_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counters)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            labels = [f"{bound:g}" for bound in LATENCY_BUCKETS] + ["+Inf"]
            empty = [0] * (len(LATENCY_BUCKETS) + 1)
            endpoints: Dict[str, Dict[str, Any]] = {}
            for endpoint, stats in sorted(self.endpoints.items()):
                cumulative: Dict[str, int] = {}
                running = 0
                for label, observed in zip(
                    labels, self._buckets.get(endpoint, empty)
                ):
                    running += observed
                    cumulative[label] = running
                endpoints[endpoint] = {
                    "count": stats["count"],
                    "seconds_total": stats["seconds_total"],
                    "seconds_avg": stats["seconds_total"] / stats["count"],
                    "seconds_max": stats["seconds_max"],
                    "seconds_bucket": cumulative,
                }
            return {
                "requests_total": self.requests_total,
                "responses": dict(sorted(self.responses.items())),
                "endpoints": endpoints,
            }
