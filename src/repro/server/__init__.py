"""``repro.server`` — a long-running JSON-over-HTTP constraint service.

The batch CLI pays a cold start on every invocation: parse schema + rules,
load the data, build the engine indexes, detect once, exit.  This module
keeps that work *warm*: a resident :class:`ReproHTTPServer` hosts many
named :class:`~repro.session.Session` objects, each with its hash indexes,
shard buckets and delta engine alive across requests, so repeated
detect/edit traffic pays only the marginal work of each request — the
amortization the sharded engine layers were built for.

Stdlib only (``http.server`` + ``ThreadingHTTPServer``); one thread per
request.  Requests against *one* session serialize on that session's lock
(the delta engine is single-writer); requests against *distinct* sessions
run in parallel.  When more than ``max_sessions`` sessions are open the
least-recently-used one is evicted through ``Session.close()``.

With ``--state-dir`` the server is *durable*
(:mod:`repro.server.durability`): every write verb appends a CRC-framed,
fsync'd record to a per-session changeset WAL before the response
commits, snapshots retire the log every ``--snapshot-every`` records,
eviction becomes flush-then-drop, and on restart (or on first touch of
an evicted session) the manager lazily rehydrates the session from
snapshot + WAL tail — undo tokens included.  Kill -9 the process at any
byte boundary, restart on the same state dir, and every session answers
``detect`` byte-identically to an uninterrupted run.

Endpoints (see ``docs/server.md`` for the full wire format):

===========================  ==============================================
``GET  /healthz``            liveness + open-session count
``GET  /metrics``            request counts, per-endpoint latency, cache stats
``GET  /metrics?format=prometheus``  the same document, text exposition format
``GET  /sessions``           list hosted sessions
``POST /sessions``           create a session (inline docs or server paths)
``GET  /sessions/{id}``      one session's info document
``DELETE /sessions/{id}``    close + evict a session
``POST /sessions/{id}/detect``  run detection → the CLI's ``--format json`` doc
``POST /sessions/{id}/apply``   apply a changeset document via the delta engine
``POST /sessions/{id}/undo``    replay a stored undo token
``POST /sessions/{id}/repair``  repair (strategy u|x|s) → repair report doc
``GET/PUT/POST /sessions/{id}/rules``  registry round-trip of the rule set
``GET  /sessions/{id}/diagnostics``  engine/delta/lock/durability deep dive
===========================  ==============================================

A session that fails ``degraded_after`` consecutive times server-side is
*degraded*: it answers 503 ``{"degraded": ...}`` while one request at a
time runs the verb as a recovery probe — the first success clears the
state (see ``docs/server.md`` § Ops).

Start one from Python (tests, benchmarks)::

    server = make_server(port=0)           # port 0: pick a free port
    server.start_background()
    ...                                    # drive it via repro.client
    server.shutdown()

or from the CLI: ``repro serve --port 8765 --max-sessions 64``.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.engine.delta import Changeset, StaleEngineError
from repro.errors import (
    DependencyError,
    DomainError,
    RepairError,
    ReproError,
    SchemaError,
)
from repro.relational.csvio import load_csv
from repro.relational.instance import DatabaseInstance
from repro.server.durability import (
    DEFAULT_SNAPSHOT_EVERY,
    MAX_UNDO_TOKENS,
    SessionJournal,
    SessionStore,
)
from repro.server.metrics import LATENCY_BUCKETS, prometheus_text
from repro.session import Session

__all__ = [
    "ReproHTTPServer",
    "SessionManager",
    "HostedSession",
    "UnknownSessionError",
    "SessionDegradedError",
    "DEFAULT_DEGRADED_AFTER",
    "MAX_UNDO_TOKENS",
    "DEFAULT_SNAPSHOT_EVERY",
    "SessionJournal",
    "SessionStore",
    "make_server",
    "serve",
]

#: consecutive server-side handler failures before a session is degraded
DEFAULT_DEGRADED_AFTER = 5

#: a lock acquired slower than this waited on another request (an
#: uncontended ``threading.Lock`` acquires in well under a microsecond)
_CONTENDED_LOCK_WAIT = 0.001

#: DeltaStats counters aggregated into /metrics and per-session diagnostics
_DELTA_STAT_FIELDS = (
    "batches",
    "ops_applied",
    "keys_patched",
    "keys_reevaluated",
    "inclusion_keys_touched",
    "fallback_rescans",
)


class UnknownSessionError(ReproError):
    """No hosted session under the requested id (HTTP 404)."""


class DuplicateSessionError(ReproError):
    """A session with the requested id already exists (HTTP 409)."""


class SessionDegradedError(ReproError):
    """The session is degraded; the verb was not run (HTTP 503).

    ``document`` is the degraded-state body merged into the error
    response under ``"degraded"``.
    """

    def __init__(
        self, message: str, document: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(message)
        self.document: Dict[str, Any] = document or {}


class HostedSession:
    """One warm session plus the server-side state that wraps it.

    ``lock`` serializes every request that touches the session — the delta
    engine and the warm parallel executor are single-writer structures, so
    concurrent requests against one session queue here while requests
    against other sessions proceed on their own locks.
    """

    __slots__ = (
        "id",
        "session",
        "lock",
        "created",
        "last_used",
        "requests",
        "journal",
        "_undo",
        "_undo_counter",
        "failures",
        "degraded_since",
        "degraded_total",
        "last_error",
        "probe_in_flight",
        "lock_acquisitions",
        "lock_wait_seconds_total",
        "lock_wait_seconds_max",
        "lock_contended",
        "closed",
    )

    def __init__(
        self,
        session_id: str,
        session: Session,
        journal: Optional[SessionJournal] = None,
        undo: Optional["OrderedDict[str, Changeset]"] = None,
        undo_counter: int = 0,
    ) -> None:
        self.id = session_id
        self.session = session
        self.lock = threading.Lock()
        self.created = time.time()
        self.last_used = self.created
        self.requests = 0
        self.journal = journal
        self._undo: "OrderedDict[str, Changeset]" = (
            undo if undo is not None else OrderedDict()
        )
        self._undo_counter = undo_counter
        #: degraded gating: consecutive 5xx-class handler failures
        self.failures = 0
        self.degraded_since: Optional[float] = None
        self.degraded_total = 0
        self.last_error: Optional[str] = None
        self.probe_in_flight = False
        #: lock-wait aggregates for the diagnostics endpoint
        self.lock_acquisitions = 0
        self.lock_wait_seconds_total = 0.0
        self.lock_wait_seconds_max = 0.0
        self.lock_contended = 0
        #: set (under ``lock``) when eviction/removal closed this object;
        #: a handler that won the lock after a close must re-resolve the
        #: session id instead of running on a dead engine
        self.closed = False

    def touch(self) -> None:
        self.last_used = time.time()
        self.requests += 1

    # repro: lock-held — verb handlers call this under ``self.lock``
    def remember_undo(self, undo: Changeset) -> str:
        """Store an undo changeset; returns its single-use token.

        This is the *only* place the ``MAX_UNDO_TOKENS`` bound is
        enforced — tokens leave the table through :meth:`consume_undo`
        (successful replay), :meth:`clear_undo` (instance swap) or the
        LRU eviction here, never by re-insertion, so the eviction order
        is exactly token-creation order.
        """
        self._undo_counter += 1
        token = f"undo-{self._undo_counter}"
        self._undo[token] = undo
        while len(self._undo) > MAX_UNDO_TOKENS:
            self._undo.popitem(last=False)
        return token

    def peek_undo(self, token: str) -> Changeset:
        """Read a stored undo changeset without consuming the token.

        The token keeps its position in the eviction order: a failed
        replay must not promote an old token over newer ones (that would
        change which token :meth:`remember_undo` evicts next).
        """
        try:
            return self._undo[token]
        except KeyError:
            raise ReproError(
                f"unknown or already-used undo token {token!r}"
            ) from None

    # repro: lock-held — verb handlers call this under ``self.lock``
    def consume_undo(self, token: str) -> None:
        """Retire a token after its replay succeeded (tokens are
        single-use)."""
        self._undo.pop(token, None)

    # repro: lock-held — verb handlers call this under ``self.lock``
    def clear_undo(self) -> None:
        """Drop every stored token — the instance they were recorded
        against has been replaced (e.g. ``repair(adopt=True)``)."""
        self._undo.clear()

    def undo_state(self) -> Tuple[List[Tuple[str, Changeset]], int]:
        """Copy of the token table + counter, for journal-failure rollback."""
        return list(self._undo.items()), self._undo_counter

    # repro: lock-held — rollback paths call this under ``self.lock``
    def restore_undo_state(
        self, state: Tuple[List[Tuple[str, Changeset]], int]
    ) -> None:
        """Put the token table back exactly as :meth:`undo_state` saw it."""
        items, counter = state
        self._undo.clear()
        self._undo.update(items)
        self._undo_counter = counter

    # -- durability (all called under ``lock``) --------------------------

    def persist_apply(
        self, changeset_doc: Mapping[str, Any], token: str
    ) -> None:
        """WAL a successful apply (fsync'd before the response commits)."""
        self._persist_record(
            lambda journal: journal.log_apply(changeset_doc, token)
        )

    def persist_undo(self, taken: str, token: str) -> None:
        """WAL a successful undo replay."""
        self._persist_record(lambda journal: journal.log_undo(taken, token))

    def persist_rules(
        self, rules_docs: List[Dict[str, Any]], replace: bool
    ) -> None:
        """WAL a rules replace/append."""
        self._persist_record(
            lambda journal: journal.log_rules(rules_docs, replace)
        )

    def persist_snapshot(self) -> None:
        """Capture full session state now, retiring the WAL generation."""
        if self.journal is not None:
            self.journal.write_snapshot(
                self.session, list(self._undo.items()), self._undo_counter
            )

    def _persist_record(self, append: Any) -> None:
        """Make one write verb durable: a WAL append, normally.

        A *blocked* journal (an earlier append left bytes it could not
        remove, or a snapshot failed with memory ahead of disk) cannot
        take appends; a full snapshot both captures this write — the
        in-memory mutation and its undo token land before this runs —
        and reopens a fresh WAL generation, clearing the block.  Either
        path raising means the write did not durably commit; the handler
        rolls the in-memory mutation back and the client sees the error.
        """
        if self.journal is None:
            return
        if self.journal.blocked is not None:
            self.persist_snapshot()
            return
        append(self.journal)
        self._maybe_snapshot()

    def _maybe_snapshot(self) -> None:
        if (
            self.journal is not None
            and self.journal.wal_records >= self.journal.store.snapshot_every
        ):
            try:
                self.persist_snapshot()
            except Exception:
                # the triggering write is already durable in the WAL, so a
                # failed cadence snapshot must not fail its request; the
                # WAL stays open and the next write retries (via the
                # journal's blocked fallback in ``_persist_record``)
                self.journal.store._count("snapshot_failures_total")

    # -- degraded gating (mutations under ``lock``) ----------------------

    @property
    def is_degraded(self) -> bool:
        return self.degraded_since is not None

    # repro: lock-held — ``_gated_verb`` calls this under ``self.lock``
    def record_failure(self, message: str, threshold: int) -> bool:
        """Count one server-side (5xx-class) handler failure.

        Returns True exactly when this failure crossed ``threshold``
        consecutive failures and moved the session into the degraded
        state."""
        self.failures += 1
        self.last_error = message
        if self.degraded_since is None and self.failures >= threshold:
            self.degraded_since = time.time()
            self.degraded_total += 1
            return True
        return False

    # repro: lock-held — ``_gated_verb`` calls this under ``self.lock``
    def record_success(self) -> bool:
        """Reset the failure counters after a verb succeeded.

        Returns True when this success was a recovery probe clearing a
        degraded session."""
        recovered = self.degraded_since is not None
        self.failures = 0
        self.degraded_since = None
        self.last_error = None
        return recovered

    def degraded_document(self) -> Dict[str, Any]:
        """The state document served under ``"degraded"`` in 503 bodies."""
        since = self.degraded_since
        return {
            "session": self.id,
            "degraded": since is not None,
            "consecutive_failures": self.failures,
            "degraded_seconds": (
                time.time() - since if since is not None else 0.0
            ),
            "last_error": self.last_error,
        }

    # repro: lock-held — ``_gated_verb`` calls this right after acquiring
    def note_lock_wait(self, seconds: float) -> None:
        """Aggregate how long this request queued for the session lock."""
        self.lock_acquisitions += 1
        self.lock_wait_seconds_total += seconds
        if seconds > self.lock_wait_seconds_max:
            self.lock_wait_seconds_max = seconds
        if seconds >= _CONTENDED_LOCK_WAIT:
            self.lock_contended += 1

    def diagnostics(self) -> Dict[str, Any]:
        """The deep per-session document (``GET /sessions/{id}/diagnostics``):
        engine cache + delta stats, lock-wait aggregates, degraded state,
        durability generation and WAL depth."""
        with self.lock:
            session = self.session
            engine = session.warm_engine
            engine_doc: Dict[str, Any] = {
                "warm_delta_engine": engine is not None,
                "warm_parallel_executor": session.has_warm_parallel,
                "executor": session.executor,
                "shards": session.shards,
                "maintained_violations": None,
                "delta_stats": None,
            }
            if engine is not None:
                engine_doc["maintained_violations"] = engine.total_violations()
                engine_doc["delta_stats"] = {
                    field: getattr(engine.stats, field)
                    for field in _DELTA_STAT_FIELDS
                }
            degraded = self.degraded_document()
            degraded["degraded_total"] = self.degraded_total
            return {
                "session": self.id,
                "relations": {
                    rel.schema.name: len(rel) for rel in session.database
                },
                "rules": len(session.rules),
                "requests": self.requests,
                "age_seconds": time.time() - self.created,
                "idle_seconds": time.time() - self.last_used,
                "engine": engine_doc,
                "locks": {
                    "acquisitions": self.lock_acquisitions,
                    "wait_seconds_total": self.lock_wait_seconds_total,
                    "wait_seconds_max": self.lock_wait_seconds_max,
                    "contended": self.lock_contended,
                },
                "degraded": degraded,
                "undo_tokens": list(self._undo),
                "durability": (
                    self.journal.status(session)
                    if self.journal is not None
                    else {"enabled": False}
                ),
            }

    def info(self) -> Dict[str, Any]:
        """The session info document.

        Takes the session lock: ``_undo`` and the engine caches mutate
        under it, so a listing racing an in-flight apply must wait for
        the batch rather than iterate mutating state.
        """
        with self.lock:
            session = self.session
            return {
                "session": self.id,
                "relations": {
                    rel.schema.name: len(rel) for rel in session.database
                },
                "rules": len(session.rules),
                "executor": session.executor,
                "shards": session.shards,
                "warm_engine": session.has_warm_engine,
                "warm_parallel": session.has_warm_parallel,
                "degraded": self.is_degraded,
                "requests": self.requests,
                "age_seconds": time.time() - self.created,
                "idle_seconds": time.time() - self.last_used,
                "undo_tokens": list(self._undo),
                "durability": (
                    self.journal.status(session)
                    if self.journal is not None
                    else {"enabled": False}
                ),
            }


class SessionManager:
    """The table of hosted sessions: create / resolve / evict.

    LRU order is maintained on every resolve; when the table grows past
    ``max_sessions`` the least-recently-used session is closed and dropped.
    All table mutations hold the manager lock; the per-session work itself
    runs under each :class:`HostedSession`'s own lock.
    """

    def __init__(
        self,
        max_sessions: int = 64,
        data_root: Optional[Path] = None,
        state_dir: Optional[Path] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = True,
    ) -> None:
        if max_sessions < 1:
            raise ReproError("max_sessions must be >= 1")
        self.max_sessions = max_sessions
        self.data_root = Path(data_root) if data_root is not None else Path.cwd()
        self._data_root_resolved = self.data_root.resolve()
        self.store: Optional[SessionStore] = (
            SessionStore(Path(state_dir), snapshot_every=snapshot_every, fsync=fsync)
            if state_dir is not None
            else None
        )
        self._lock = threading.RLock()
        self._sessions: "OrderedDict[str, HostedSession]" = OrderedDict()
        #: session ids mid-rehydration → event the losers wait on; guarded
        #: by the manager lock (the recovery itself runs outside it)
        self._rehydrating: Dict[str, threading.Event] = {}
        #: session ids mid-eviction (popped from the table, flush-and-close
        #: still running outside the lock) → event; resolution must wait for
        #: the flush to land before rehydrating, or it races the snapshot
        #: retirement and reads state missing the victim's in-flight verb
        self._evicting: Dict[str, threading.Event] = {}
        self._auto_counter = 0
        self.created_total = 0
        self.evicted_total = 0
        self.closed_total = 0

    # -- resolution ------------------------------------------------------

    def get(self, session_id: str) -> HostedSession:
        while True:
            evicting: Optional[threading.Event] = None
            with self._lock:
                hosted = self._sessions.get(session_id)
                if hosted is not None:
                    self._sessions.move_to_end(session_id)
                    hosted.touch()
                    return hosted
                evicting = self._evicting.get(session_id)
            if evicting is not None:
                # the session was just popped by LRU pressure and its
                # flush-and-close is still running; re-resolve once the
                # on-disk state is complete (rehydrating mid-flush reads
                # a snapshot generation the flush is about to retire)
                evicting.wait()
                continue
            with self._lock:
                hosted = self._sessions.get(session_id)
                if hosted is not None:
                    self._sessions.move_to_end(session_id)
                    hosted.touch()
                    return hosted
                if session_id in self._evicting:
                    continue
                if self.store is None or not self.store.exists(session_id):
                    raise UnknownSessionError(
                        f"no session {session_id!r}; open sessions: "
                        f"{list(self._sessions)}"
                    ) from None
                event = self._rehydrating.get(session_id)
                if event is None:
                    # claim the rehydration; recovery runs outside the lock
                    event = threading.Event()
                    self._rehydrating[session_id] = event
                    claimed = True
                else:
                    claimed = False
            if not claimed:
                # another request is recovering this session — wait for it
                # to land (or fail), then re-resolve from the table
                event.wait()
                continue
            try:
                hosted = self._rehydrate(session_id)
            finally:
                with self._lock:
                    self._rehydrating.pop(session_id, None)
                event.set()
            if hosted is not None:
                return hosted
            # lost a remove()/purge race after claiming — report 404

    def _rehydrate(self, session_id: str) -> Optional[HostedSession]:
        """Recover a cold durable session and publish it in the table."""
        assert self.store is not None
        try:
            journal, recovered = self.store.recover(session_id)
        except FileNotFoundError:
            return None
        hosted = HostedSession(
            session_id,
            recovered.session,
            journal=journal,
            undo=recovered.undo,
            undo_counter=recovered.undo_counter,
        )
        evicted: List[HostedSession] = []
        with hosted.lock:
            with self._lock:
                existing = self._sessions.get(session_id)
                if existing is not None:
                    # a concurrent create() won the id; its state superseded
                    # the on-disk copy we just read
                    journal.close()
                    recovered.session.close()
                    existing.touch()
                    return existing
                self._sessions[session_id] = hosted
                hosted.touch()
                while len(self._sessions) > self.max_sessions:
                    _, lru = self._sessions.popitem(last=False)
                    if lru is hosted:
                        # pathological max_sessions=1 churn: keep the
                        # session we were asked for, drop nothing else
                        self._sessions[session_id] = hosted
                        break
                    evicted.append(lru)
                    self._evicting[lru.id] = threading.Event()
                    self.evicted_total += 1
            if recovered.wal_records >= journal.store.snapshot_every:
                # long tail replayed — fold it into a snapshot now rather
                # than replaying it again on the next restart
                hosted.persist_snapshot()
        self._evict_all(evicted)
        return hosted

    def _evict_all(self, evicted: List[HostedSession]) -> None:
        """Flush-and-close popped LRU victims, then release their
        eviction tombstones so waiting resolvers may rehydrate."""
        for lru in evicted:
            try:
                self._flush_and_close(lru)
            finally:
                with self._lock:
                    event = self._evicting.pop(lru.id, None)
                if event is not None:
                    event.set()

    def list(self) -> List[HostedSession]:
        with self._lock:
            return list(self._sessions.values())

    def cold_session_ids(self) -> List[str]:
        """Durable sessions on disk but not currently resident."""
        if self.store is None:
            return []
        with self._lock:
            resident = set(self._sessions)
            pending = set(self._rehydrating)
        return [
            sid
            for sid in self.store.session_ids()
            if sid not in resident and sid not in pending
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # -- lifecycle -------------------------------------------------------

    def _resolve_path(self, path: str) -> Path:
        """Resolve a client-supplied server-side path inside ``data_root``.

        Clients name schema/rules/CSV files by path; the data root is the
        confinement boundary.  Absolute paths and ``..`` traversal are
        rejected *after* resolving symlinks, so a link pointing outside
        the root does not slip through either.
        """
        candidate = Path(path)
        if not candidate.is_absolute():
            candidate = self.data_root / candidate
        resolved = candidate.resolve()
        if not resolved.is_relative_to(self._data_root_resolved):
            raise ReproError(
                f"server-side path {path!r} escapes the data root "
                f"{str(self.data_root)!r}"
            )
        return resolved

    def _build_session(self, document: Mapping[str, Any]) -> Session:
        from repro.rules_json import (
            database_schema_from_dict,
            load_database_schema,
            load_rules,
            rules_from_list,
        )

        schema_doc = document.get("schema")
        if isinstance(schema_doc, str):
            db_schema = load_database_schema(self._resolve_path(schema_doc))
        elif isinstance(schema_doc, Mapping):
            db_schema = database_schema_from_dict(schema_doc)
        else:
            raise SchemaError(
                "session document needs a 'schema' (inline document or "
                "server-side path)"
            )

        rules_doc = document.get("rules")
        if rules_doc is None:
            rules: List[Any] = []
        elif isinstance(rules_doc, str):
            rules = load_rules(self._resolve_path(rules_doc), db_schema)
        elif isinstance(rules_doc, (list, tuple)):
            rules = rules_from_list(rules_doc, db_schema)
        else:
            raise DependencyError(
                "'rules' must be a rules list or a server-side path"
            )

        db = DatabaseInstance(db_schema)
        data = document.get("data") or {}
        if not isinstance(data, Mapping):
            raise SchemaError(
                "'data' must map relation names to row lists or CSV paths"
            )
        for rel_name, payload in data.items():
            relation = db.relation(rel_name)
            if isinstance(payload, str):
                for t in load_csv(relation.schema, self._resolve_path(payload)):
                    relation.add(t)
            elif isinstance(payload, (list, tuple)):
                for row in payload:
                    relation.add(row)
            else:
                raise SchemaError(
                    f"data for relation {rel_name!r} must be a row list or "
                    "a server-side CSV path"
                )

        executor = document.get("executor", "indexed")
        shards = document.get("shards")
        if shards is not None and not isinstance(shards, int):
            raise ReproError(f"'shards' must be an integer, got {shards!r}")
        return Session.from_instance(db, rules, executor=executor, shards=shards)

    def create(self, document: Mapping[str, Any]) -> HostedSession:
        """Build and register a session from a creation document.

        The session is built *outside* the manager lock (data upload and
        index construction can be slow); only the table insert and any
        LRU eviction hold it.
        """
        session_id = document.get("id")
        if session_id is not None and not isinstance(session_id, str):
            raise ReproError(f"'id' must be a string, got {session_id!r}")
        if session_id == "":
            raise ReproError("'id' must be a non-empty string")
        if session_id is not None:
            # fail fast before paying the data upload / instance build;
            # the post-build check below still covers a create/create race
            with self._lock:
                if session_id in self._sessions:
                    raise DuplicateSessionError(
                        f"session {session_id!r} already exists; DELETE it "
                        "first or create under a fresh id"
                    )
            if self.store is not None and self.store.exists(session_id):
                raise DuplicateSessionError(
                    f"session {session_id!r} already exists (durable state "
                    "on disk); DELETE it first or create under a fresh id"
                )
        session = self._build_session(document)
        evicted: List[HostedSession] = []
        hosted: Optional[HostedSession] = None
        try:
            with self._lock:
                if session_id is None:
                    self._auto_counter += 1
                    session_id = f"s{self._auto_counter}"
                    while session_id in self._sessions or (
                        self.store is not None and self.store.exists(session_id)
                    ):
                        self._auto_counter += 1
                        session_id = f"s{self._auto_counter}"
                elif session_id in self._sessions:
                    raise DuplicateSessionError(
                        f"session {session_id!r} already exists; DELETE it "
                        "first or create under a fresh id"
                    )
                hosted = HostedSession(session_id, session)
                self._sessions[session_id] = hosted
                self.created_total += 1
                while len(self._sessions) > self.max_sessions:
                    _, lru = self._sessions.popitem(last=False)
                    evicted.append(lru)
                    self._evicting[lru.id] = threading.Event()
                    self.evicted_total += 1
            if self.store is not None:
                # hold the session lock across the durable create so no
                # request can land on the published session before its
                # journal (and gen-0 snapshot) exists
                with hosted.lock:
                    try:
                        hosted.journal = self.store.create(session_id, session)
                    except FileExistsError:
                        raise DuplicateSessionError(
                            f"session {session_id!r} already exists (durable "
                            "state on disk); DELETE it first or create under "
                            "a fresh id"
                        ) from None
        except BaseException:
            if hosted is not None:
                with self._lock:
                    if self._sessions.get(session_id) is hosted:
                        del self._sessions[session_id]
                        self.created_total -= 1
            session.close()
            raise
        finally:
            # Close outside the manager lock: an in-flight request may hold
            # the session lock, and closing must wait for it, not block the
            # whole table.  Runs on the failure path too — the victims were
            # already popped, and resolvers are waiting on their tombstones.
            self._evict_all(evicted)
        return hosted

    def remove(self, session_id: str) -> str:
        """Close and drop a session; durable state on disk is purged too.

        Returns the removed session id — the session object itself may
        never have been resident (cold durable session)."""
        while True:
            with self._lock:
                hosted = self._sessions.pop(session_id, None)
                event = self._rehydrating.get(session_id)
                if event is None:
                    event = self._evicting.get(session_id)
                if hosted is None and event is None:
                    if self.store is None or not self.store.exists(session_id):
                        raise UnknownSessionError(
                            f"no session {session_id!r}; open sessions: "
                            f"{list(self._sessions)}"
                        ) from None
                if hosted is not None:
                    self.closed_total += 1
            if hosted is None and event is not None:
                # a rehydration or eviction flush is in flight; let it
                # land, then remove whatever it produced
                event.wait()
                continue
            break
        if hosted is not None:
            with hosted.lock:
                hosted.closed = True
                if hosted.journal is not None:
                    hosted.journal.close()
                hosted.session.close()
        if self.store is not None:
            self.store.purge(session_id)
            if hosted is None:
                with self._lock:
                    self.closed_total += 1
        return session_id

    def close_all(self) -> None:
        """Flush every dirty journal and close every session (shutdown)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for hosted in sessions:
            self._flush_and_close(hosted)

    def _flush_and_close(self, hosted: HostedSession) -> None:
        """Eviction/shutdown path: snapshot pending state, then close.

        With durability on, eviction means *flush then drop* — the session
        leaves memory but stays recoverable (and is lazily rehydrated on
        the next request that names it)."""
        with hosted.lock:
            hosted.closed = True
            journal = hosted.journal
            if journal is not None:
                if journal.needs_flush or hosted.session.dirty:
                    try:
                        hosted.persist_snapshot()
                        journal.store._count("flushed_total")
                    except Exception:
                        # every acknowledged write is already durable in
                        # the snapshot + WAL on disk; a failed eviction
                        # flush only loses the chance to fold the WAL
                        # tail into a snapshot before dropping the session
                        journal.store._count("snapshot_failures_total")
                journal.close()
            hosted.session.close()


class ServerMetrics:
    """Thread-safe request counters: totals, statuses, per-endpoint latency
    (with Prometheus-style histogram buckets) and named ops counters."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests_total = 0
        self.responses: Dict[str, int] = {}
        self.endpoints: Dict[str, Dict[str, float]] = {}
        #: per-endpoint latency observations, one slot per LATENCY_BUCKETS
        #: bound plus the trailing +Inf overflow slot
        self._buckets: Dict[str, List[int]] = {}
        #: named operational counters (degraded gating lifecycle)
        self.counters: Dict[str, int] = {
            "handler_failures_total": 0,
            "degraded_total": 0,
            "probes_total": 0,
            "recoveries_total": 0,
            "rejected_total": 0,
        }

    def record(self, endpoint: str, status: int, seconds: float) -> None:
        with self._lock:
            self.requests_total += 1
            key = str(status)
            self.responses[key] = self.responses.get(key, 0) + 1
            stats = self.endpoints.setdefault(
                endpoint, {"count": 0, "seconds_total": 0.0, "seconds_max": 0.0}
            )
            stats["count"] += 1
            stats["seconds_total"] += seconds
            stats["seconds_max"] = max(stats["seconds_max"], seconds)
            buckets = self._buckets.setdefault(
                endpoint, [0] * (len(LATENCY_BUCKETS) + 1)
            )
            for index, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    buckets[index] += 1
                    break
            else:
                buckets[-1] += 1

    def count(self, name: str) -> None:
        """Bump one named operational counter."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + 1

    def counters_snapshot(self) -> Dict[str, int]:
        with self._lock:
            return dict(self.counters)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            labels = [f"{bound:g}" for bound in LATENCY_BUCKETS] + ["+Inf"]
            empty = [0] * (len(LATENCY_BUCKETS) + 1)
            endpoints: Dict[str, Dict[str, Any]] = {}
            for endpoint, stats in sorted(self.endpoints.items()):
                cumulative: Dict[str, int] = {}
                running = 0
                for label, observed in zip(
                    labels, self._buckets.get(endpoint, empty)
                ):
                    running += observed
                    cumulative[label] = running
                endpoints[endpoint] = {
                    "count": stats["count"],
                    "seconds_total": stats["seconds_total"],
                    "seconds_avg": stats["seconds_total"] / stats["count"],
                    "seconds_max": stats["seconds_max"],
                    "seconds_bucket": cumulative,
                }
            return {
                "requests_total": self.requests_total,
                "responses": dict(sorted(self.responses.items())),
                "endpoints": endpoints,
            }


class ReproHTTPServer(ThreadingHTTPServer):
    """The threading HTTP server plus the shared service state."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        max_sessions: int = 64,
        data_root: Optional[Path] = None,
        state_dir: Optional[Path] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = True,
        degraded_after: int = DEFAULT_DEGRADED_AFTER,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.manager = SessionManager(
            max_sessions,
            data_root=data_root,
            state_dir=state_dir,
            snapshot_every=snapshot_every,
            fsync=fsync,
        )
        self.metrics = ServerMetrics()
        #: consecutive handler failures before a session degrades (0 = off)
        self.degraded_after = max(0, degraded_after)
        self.started = time.time()
        self.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def base_url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Serve requests on a daemon thread (tests, benchmarks)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        self._thread = thread
        return thread

    def shutdown(self) -> None:  # type: ignore[override]
        super().shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.manager.close_all()
        self.server_close()

    # -- documents -------------------------------------------------------

    def health_document(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started,
            "sessions": len(self.manager),
            "max_sessions": self.manager.max_sessions,
        }

    def metrics_document(self) -> Dict[str, Any]:
        manager = self.manager
        warm_engines = 0
        warm_parallel = 0
        delta_totals = {field: 0 for field in _DELTA_STAT_FIELDS}
        maintained_violations = 0
        degraded_sessions = 0
        for hosted in manager.list():
            # per-session lock, but never *wait* for one: a scrape must
            # not hang behind a long (or wedged) verb handler.  Busy
            # sessions fall back to dirty single-attribute reads and
            # skip the engine totals — a momentary undercount in a
            # gauge, not a stalled /metrics endpoint.
            if hosted.lock.acquire(blocking=False):
                try:
                    session = hosted.session
                    engine = session.warm_engine
                    if engine is not None:
                        warm_engines += 1
                        maintained_violations += engine.total_violations()
                        for field in delta_totals:
                            delta_totals[field] += getattr(
                                engine.stats, field
                            )
                    if session.has_warm_parallel:
                        warm_parallel += 1
                    if hosted.is_degraded:
                        degraded_sessions += 1
                finally:
                    hosted.lock.release()
            else:
                session = hosted.session
                if session.warm_engine is not None:
                    warm_engines += 1
                if session.has_warm_parallel:
                    warm_parallel += 1
                if hosted.is_degraded:
                    degraded_sessions += 1
        document = self.metrics_document_base()
        ops_counters = self.metrics.counters_snapshot()
        document["degraded"] = {
            "threshold": self.degraded_after,
            "sessions_degraded": degraded_sessions,
            "degraded_total": ops_counters["degraded_total"],
            "handler_failures_total": ops_counters["handler_failures_total"],
            "probes_total": ops_counters["probes_total"],
            "recoveries_total": ops_counters["recoveries_total"],
            "rejected_total": ops_counters["rejected_total"],
        }
        document["sessions"] = {
            "open": len(manager),
            "max_sessions": manager.max_sessions,
            "created_total": manager.created_total,
            "evicted_total": manager.evicted_total,
            "closed_total": manager.closed_total,
        }
        document["engines"] = {
            "warm_delta_engines": warm_engines,
            "warm_parallel_executors": warm_parallel,
            "maintained_violations": maintained_violations,
            "delta_stats": delta_totals,
        }
        if manager.store is not None:
            durability: Dict[str, Any] = {"enabled": True}
            durability.update(manager.store.counters_snapshot())
            durability["cold_sessions"] = len(manager.cold_session_ids())
            document["durability"] = durability
        else:
            document["durability"] = {"enabled": False}
        return document

    def metrics_document_base(self) -> Dict[str, Any]:
        document = {"uptime_seconds": time.time() - self.started}
        document.update(self.metrics.snapshot())
        return document


# --------------------------------------------------------------------------
# Request handling
# --------------------------------------------------------------------------

#: (error class, HTTP status) in match order — first isinstance hit wins
_ERROR_STATUS = (
    (SessionDegradedError, 503),
    (UnknownSessionError, 404),
    (DuplicateSessionError, 409),
    (StaleEngineError, 409),
    (RepairError, 400),
    (DependencyError, 400),
    (SchemaError, 400),
    (DomainError, 400),
    (ReproError, 400),
    (KeyError, 400),
    (ValueError, 400),
)


def _status_for(exc: BaseException) -> int:
    """Map a handler exception to its HTTP status (500 when unclassified)."""
    for error_cls, error_status in _ERROR_STATUS:
        if isinstance(exc, error_cls):
            return error_status
    return 500


class _BadRequest(Exception):
    """Internal: malformed request envelope (not a library error)."""


class _PlainText:
    """Marker: a route resolved to a non-JSON payload."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


class _Handler(BaseHTTPRequestHandler):
    server: ReproHTTPServer  # narrowed for type checkers
    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _read_body(self) -> Any:
        self._body_read = True
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}") from exc

    def _drain_body(self) -> None:
        """Consume an unread request body before responding.

        Connections are HTTP/1.1 keep-alive: if a handler errors before
        reading the declared body (unknown route, unknown session), the
        unread bytes would be parsed as the next request line on the
        reused socket — a protocol desync.
        """
        if getattr(self, "_body_read", False):
            return
        self._body_read = True
        length = int(self.headers.get("Content-Length") or 0)
        if length > 0:
            self.rfile.read(length)

    def _send_json(self, status: int, document: Mapping[str, Any]) -> None:
        self._drain_body()
        payload = (
            json.dumps(document, indent=2, default=str) + "\n"
        ).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._drain_body()
        payload = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _send_error_json(self, status: int, message: str, kind: str) -> None:
        self._send_json(status, {"error": message, "type": kind})

    def _endpoint_template(self, method: str) -> str:
        """The metrics key for this request: the route *template* (session
        ids replaced by ``{id}``) whatever the outcome — raw paths would
        grow the metrics table without bound under probes against many
        distinct (e.g. evicted) session ids."""
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        if parts and parts[0] == "sessions":
            if len(parts) == 2:
                parts = ["sessions", "{id}"]
            elif len(parts) >= 3:
                parts = ["sessions", "{id}", parts[2]]
        return f"{method} /" + "/".join(parts)

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        # one handler instance serves many requests on a keep-alive
        # connection: the body-consumed flag is per-request state
        self._body_read = False
        endpoint = self._endpoint_template(method)
        status = 500
        try:
            endpoint, status, document = self._route(method)
            if isinstance(document, _PlainText):
                self._send_text(status, document.text, document.content_type)
            else:
                self._send_json(status, document)
        except _BadRequest as exc:
            status = 400
            self._send_error_json(status, str(exc), "BadRequest")
        except Exception as exc:
            status = _status_for(exc)
            message = str(exc) if not isinstance(exc, KeyError) else repr(exc)
            body: Dict[str, Any] = {
                "error": message,
                "type": type(exc).__name__,
            }
            if isinstance(exc, SessionDegradedError):
                body["degraded"] = exc.document
            self._send_json(status, body)
        finally:
            self.server.metrics.record(
                endpoint, status, time.perf_counter() - started
            )

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PUT(self) -> None:
        self._dispatch("PUT")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    # -- routing ---------------------------------------------------------

    def _route(
        self, method: str
    ) -> Tuple[str, int, Union[Dict[str, Any], _PlainText]]:
        """Resolve one request; returns (endpoint template, status, doc)."""
        path = urlsplit(self.path).path
        parts = [p for p in path.split("/") if p]

        if parts == ["healthz"] and method == "GET":
            return "GET /healthz", 200, self.server.health_document()
        if parts == ["metrics"] and method == "GET":
            query = parse_qs(urlsplit(self.path).query)
            fmt = query.get("format", ["json"])[-1]
            if fmt not in ("json", "prometheus"):
                raise _BadRequest(
                    f"unknown metrics format {fmt!r} (expected json or "
                    "prometheus)"
                )
            metrics_doc = self.server.metrics_document()
            if fmt == "prometheus":
                return (
                    "GET /metrics",
                    200,
                    _PlainText(
                        prometheus_text(metrics_doc),
                        "text/plain; version=0.0.4; charset=utf-8",
                    ),
                )
            return "GET /metrics", 200, metrics_doc

        manager = self.server.manager
        if parts and parts[0] == "sessions":
            if len(parts) == 1:
                if method == "GET":
                    document: Dict[str, Any] = {
                        "sessions": [h.info() for h in manager.list()]
                    }
                    if manager.store is not None:
                        document["cold_sessions"] = manager.cold_session_ids()
                    return "GET /sessions", 200, document
                if method == "POST":
                    body = self._read_body() or {}
                    if not isinstance(body, Mapping):
                        raise _BadRequest(
                            "session creation body must be a JSON object"
                        )
                    hosted = manager.create(body)
                    return "POST /sessions", 201, hosted.info()
            elif len(parts) == 2:
                session_id = parts[1]
                if method == "GET":
                    return (
                        "GET /sessions/{id}",
                        200,
                        manager.get(session_id).info(),
                    )
                if method == "DELETE":
                    removed = manager.remove(session_id)
                    return (
                        "DELETE /sessions/{id}",
                        200,
                        {"session": removed, "closed": True},
                    )
            elif len(parts) == 3:
                return self._route_session_verb(method, parts[1], parts[2])

        raise _BadRequest(f"no route for {method} {path}")

    def _route_session_verb(
        self, method: str, session_id: str, verb: str
    ) -> Tuple[str, int, Dict[str, Any]]:
        manager = self.server.manager
        if verb == "diagnostics" and method == "GET":
            # ungated: diagnostics must stay readable while degraded
            while True:
                hosted = manager.get(session_id)
                try:
                    document = hosted.diagnostics()
                except Exception:
                    if hosted.closed:
                        continue  # read a dying session; re-resolve
                    raise
                if hosted.closed:
                    continue  # evicted under us; re-resolve
                return ("GET /sessions/{id}/diagnostics", 200, document)
        if verb == "rules" and method == "GET":
            # ungated read: serving the rule documents never runs the
            # engine, so it says nothing about (and needs nothing from)
            # the session's health
            while True:
                hosted = manager.get(session_id)
                with hosted.lock:
                    if hosted.closed:
                        continue  # evicted under us; re-resolve
                    return (
                        "GET /sessions/{id}/rules",
                        200,
                        {"rules": hosted.session.rules_documents()},
                    )
        if verb == "rules" and method in ("PUT", "POST"):
            body = self._read_body()
            return self._run_gated(
                session_id,
                lambda hosted: self._handle_rules_write(hosted, method, body),
            )
        if method != "POST":
            raise _BadRequest(
                f"no route for {method} /sessions/{{id}}/{verb}"
            )
        body = self._read_body()
        if verb == "detect":
            return self._run_gated(
                session_id, lambda hosted: self._handle_detect(hosted, body)
            )
        if verb == "apply":
            return self._run_gated(
                session_id, lambda hosted: self._handle_apply(hosted, body)
            )
        if verb == "undo":
            return self._run_gated(
                session_id, lambda hosted: self._handle_undo(hosted, body)
            )
        if verb == "repair":
            return self._run_gated(
                session_id, lambda hosted: self._handle_repair(hosted, body)
            )
        raise _BadRequest(f"no route for POST /sessions/{{id}}/{verb}")

    def _run_gated(
        self,
        session_id: str,
        handler: Callable[
            [HostedSession], Tuple[str, int, Dict[str, Any]]
        ],
    ) -> Tuple[str, int, Dict[str, Any]]:
        """Resolve the session and run ``handler`` under degraded gating.

        Re-resolves when the resolved object was closed between lookup
        and lock acquisition (LRU eviction racing the request) — the
        retry lands on the rehydrated copy, or 404s if the session is
        truly gone."""
        while True:
            hosted = self.server.manager.get(session_id)
            result = self._gated_verb(hosted, handler)
            if result is not None:
                return result

    def _gated_verb(
        self,
        hosted: HostedSession,
        handler: Callable[
            [HostedSession], Tuple[str, int, Dict[str, Any]]
        ],
    ) -> Optional[Tuple[str, int, Dict[str, Any]]]:
        """Run one verb handler under the session lock with degraded gating.

        A session that failed ``degraded_after`` consecutive times is
        *degraded*: the next request to reach its lock runs the verb as a
        recovery probe (a success clears the state and answers normally),
        while requests arriving during an in-flight probe are rejected
        with a fast 503 instead of queueing behind a likely-failing
        handler.  Failure accounting is 5xx-only — client errors (bad
        documents, unknown undo tokens) say nothing about session health.
        The lock is released on every path: a degraded session can never
        poison it.

        Returns ``None`` when the session object was closed before the
        lock was won — the caller (:meth:`_run_gated`) re-resolves.
        """
        server = self.server
        threshold = server.degraded_after
        if threshold and hosted.is_degraded and hosted.probe_in_flight:
            # dirty read by design: the worst a race costs is one extra
            # request queueing for the lock and becoming the next probe
            server.metrics.count("rejected_total")
            raise SessionDegradedError(
                f"session {hosted.id!r} is degraded and a recovery probe "
                "is already in flight; retry shortly",
                hosted.degraded_document(),
            )
        wait_from = time.perf_counter()
        with hosted.lock:
            if hosted.closed:
                return None
            hosted.note_lock_wait(time.perf_counter() - wait_from)
            probing = bool(threshold) and hosted.is_degraded
            if probing:
                hosted.probe_in_flight = True
                server.metrics.count("probes_total")
            try:
                result = handler(hosted)
            except Exception as exc:
                if threshold and _status_for(exc) >= 500:
                    server.metrics.count("handler_failures_total")
                    if hosted.record_failure(str(exc), threshold):
                        server.metrics.count("degraded_total")
                    if hosted.is_degraded:
                        raise SessionDegradedError(
                            f"session {hosted.id!r} is degraded after "
                            f"{hosted.failures} consecutive failures; the "
                            f"next request probes for recovery (last "
                            f"error: {exc})",
                            hosted.degraded_document(),
                        ) from exc
                raise
            else:
                if threshold and hosted.record_success():
                    server.metrics.count("recoveries_total")
                return result
            finally:
                if probing:
                    hosted.probe_in_flight = False

    # -- verbs (all run under the hosted session's lock) -----------------

    @staticmethod
    def _handle_detect(
        hosted: HostedSession, body: Any
    ) -> Tuple[str, int, Dict[str, Any]]:
        body = body or {}
        if not isinstance(body, Mapping):
            raise _BadRequest("detect body must be a JSON object (or empty)")
        report = hosted.session.detect(
            executor=body.get("executor"),
            shards=body.get("shards"),
        )
        document = report.to_dict(
            include_violations=bool(body.get("include_violations", True))
        )
        return "POST /sessions/{id}/detect", 200, document

    @staticmethod
    def _delta_document(hosted: HostedSession, delta: Any) -> Dict[str, Any]:
        from repro.session import ViolationReport

        return {
            "added": [
                ViolationReport._violation_to_dict(v) for v in delta.added
            ],
            "removed": [
                ViolationReport._violation_to_dict(v) for v in delta.removed
            ],
            "remaining": delta.remaining,
            "clean": delta.clean_after,
            "undo_token": hosted.remember_undo(delta.undo),
        }

    def _handle_apply(
        self, hosted: HostedSession, body: Any
    ) -> Tuple[str, int, Dict[str, Any]]:
        if not isinstance(body, Mapping):
            raise _BadRequest(
                "apply body must be a changeset document {\"ops\": [...]}"
            )
        changeset = Changeset.from_dict(body)
        saved_undo = hosted.undo_state()
        delta = hosted.session.apply(changeset)
        document = self._delta_document(hosted, delta)
        # WAL after the apply committed, before the response does: the
        # canonical changeset (not the raw body) replays deterministically
        try:
            hosted.persist_apply(changeset.to_dict(), document["undo_token"])
        except BaseException:
            # the record did not durably commit: roll the in-memory apply
            # back so memory, journal and the client's error response all
            # agree the write never happened (a retry is safe)
            hosted.session.apply(delta.undo)
            hosted.restore_undo_state(saved_undo)
            raise
        return "POST /sessions/{id}/apply", 200, document

    def _handle_undo(
        self, hosted: HostedSession, body: Any
    ) -> Tuple[str, int, Dict[str, Any]]:
        if not isinstance(body, Mapping) or "token" not in body:
            raise _BadRequest("undo body must be {\"token\": \"...\"}")
        token = body["token"]
        # peek, don't pop: a failed apply rolls the database back
        # (delta-engine atomicity), so the token must stay valid — and in
        # its original eviction slot — instead of burning on the attempt
        undo = hosted.peek_undo(token)
        saved_undo = hosted.undo_state()
        delta = hosted.session.apply(undo)
        hosted.consume_undo(token)
        document = self._delta_document(hosted, delta)
        try:
            hosted.persist_undo(token, document["undo_token"])
        except BaseException:
            # roll the replay back: the database reverts and the taken
            # token returns to its original eviction slot, still valid
            hosted.session.apply(delta.undo)
            hosted.restore_undo_state(saved_undo)
            raise
        return "POST /sessions/{id}/undo", 200, document

    @staticmethod
    def _handle_repair(
        hosted: HostedSession, body: Any
    ) -> Tuple[str, int, Dict[str, Any]]:
        body = body or {}
        if not isinstance(body, Mapping):
            raise _BadRequest("repair body must be a JSON object (or empty)")
        kwargs: Dict[str, Any] = {}
        if "max_passes" in body:
            kwargs["max_passes"] = int(body["max_passes"])
        if "limit" in body:
            kwargs["limit"] = int(body["limit"])
        adopt = bool(body.get("adopt", False))
        report = hosted.session.repair(
            strategy=body.get("strategy", "u"),
            adopt=adopt,
            **kwargs,
        )
        if adopt:
            # the instance the stored undo changesets were recorded
            # against is gone; replaying one on the repaired instance
            # would silently corrupt it
            hosted.clear_undo()
            # wholesale instance swap: no changeset to WAL — capture the
            # adopted state as a fresh snapshot instead
            hosted.persist_snapshot()
        return "POST /sessions/{id}/repair", 200, report.to_dict()

    @staticmethod
    def _handle_rules_write(
        hosted: HostedSession, method: str, body: Any
    ) -> Tuple[str, int, Dict[str, Any]]:
        from repro.rules_json import rules_from_list, rules_to_list

        if isinstance(body, Mapping):
            documents = body.get("rules")
        else:
            documents = body
        if not isinstance(documents, (list, tuple)):
            raise _BadRequest(
                "rules body must be a rules list (or {\"rules\": [...]})"
            )
        session = hosted.session
        parsed = rules_from_list(documents, session.schema)
        previous = list(session.rules)
        if method == "PUT":
            session.replace_rules(parsed)
        else:
            session.add_rules(*parsed)
        try:
            hosted.persist_rules(
                rules_to_list(parsed), replace=method == "PUT"
            )
        except BaseException:
            # journal failure: put the previous rule set back so the
            # client's error response matches the session's state
            session.replace_rules(previous)
            raise
        return (
            f"{method} /sessions/{{id}}/rules",
            200,
            {"session": hosted.id, "rules": len(session.rules)},
        )


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def make_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    max_sessions: int = 64,
    data_root: Optional[Path] = None,
    state_dir: Optional[Path] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    fsync: bool = True,
    degraded_after: int = DEFAULT_DEGRADED_AFTER,
    verbose: bool = False,
) -> ReproHTTPServer:
    """Build a server (not yet serving); ``port=0`` picks a free port."""
    return ReproHTTPServer(
        (host, port), max_sessions=max_sessions, data_root=data_root,
        state_dir=state_dir, snapshot_every=snapshot_every, fsync=fsync,
        degraded_after=degraded_after, verbose=verbose,
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    max_sessions: int = 64,
    data_root: Optional[Path] = None,
    state_dir: Optional[Path] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    degraded_after: int = DEFAULT_DEGRADED_AFTER,
    verbose: bool = True,
) -> int:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop)."""
    import sys

    server = make_server(
        host, port, max_sessions=max_sessions, data_root=data_root,
        state_dir=state_dir, snapshot_every=snapshot_every,
        degraded_after=degraded_after, verbose=verbose,
    )
    durable = ""
    if state_dir is not None:
        cold = len(server.manager.cold_session_ids())
        durable = f", durable state in {state_dir} ({cold} recoverable)"
    print(
        f"repro server listening on {server.base_url} "
        f"(max {max_sessions} sessions{durable})",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.manager.close_all()
        server.server_close()
    return 0
