"""``repro.server`` — a long-running JSON-over-HTTP constraint service.

The batch CLI pays a cold start on every invocation: parse schema + rules,
load the data, build the engine indexes, detect once, exit.  This package
keeps that work *warm*: a resident server hosts many named
:class:`~repro.session.Session` objects, each with its hash indexes,
shard buckets and delta engine alive across requests, so repeated
detect/edit traffic pays only the marginal work of each request — the
amortization the sharded engine layers were built for.

Two transports share one :class:`~repro.server.core.ServiceCore` (so
their wire bytes are identical):

* :mod:`repro.server.aio` — the default ``asyncio`` front end: read
  verbs run lock-free against versioned session snapshots, write verbs
  serialize per session, and many idle keep-alive connections cost one
  event loop instead of one thread each;
* this module's :class:`ReproHTTPServer` — the legacy thread-per-request
  server (``http.server`` + ``ThreadingHTTPServer``), available behind
  ``repro serve --legacy-threaded`` for one release.

Requests against *one* session serialize on that session's lock (the
delta engine is single-writer); requests against *distinct* sessions run
in parallel.  When more than ``max_sessions`` sessions are open the
least-recently-used one is evicted through ``Session.close()``.

With ``--state-dir`` the server is *durable*
(:mod:`repro.server.durability`): every write verb appends a CRC-framed,
fsync'd record to a per-session changeset WAL before the response
commits, snapshots retire the log every ``--snapshot-every`` records,
eviction becomes flush-then-drop, and on restart (or on first touch of
an evicted session) the manager lazily rehydrates the session from
snapshot + WAL tail — undo tokens included.  Kill -9 the process at any
byte boundary, restart on the same state dir, and every session answers
``detect`` byte-identically to an uninterrupted run.

The wire protocol is versioned (:mod:`repro.server.wire`): every
endpoint mounts under ``/v1/...`` and every JSON response carries
``"wire_version": 1`` as the first envelope key.  Unversioned paths
answer ``301`` to the ``/v1`` mount with a ``Deprecation`` header for
one release.  Endpoints (see ``docs/server.md`` for the full wire
format):

==================================  =======================================
``GET  /v1/healthz``                liveness + open-session count
``GET  /v1/metrics``                request counts, latency, cache stats
``GET  /v1/metrics?format=prometheus``  the same document, text exposition
``GET  /v1/sessions``               list hosted sessions (lock-free)
``POST /v1/sessions``               create a session (inline docs or paths)
``GET  /v1/sessions/{id}``          one session's info document
``DELETE /v1/sessions/{id}``        close + evict a session
``POST /v1/sessions/{id}/detect``   run detection → the CLI's json doc
``POST /v1/sessions/{id}/apply``    apply a changeset via the delta engine
``POST /v1/sessions/{id}/undo``     replay a stored undo token
``POST /v1/sessions/{id}/repair``   repair (strategy u|x|s) → repair doc
``GET/PUT/POST /v1/sessions/{id}/rules``  registry round-trip of the rules
``GET  /v1/sessions/{id}/diagnostics``  engine/delta/lock/durability dive
==================================  =======================================

A session that fails ``degraded_after`` consecutive times server-side is
*degraded*: it answers 503 ``{"degraded": ...}`` while one request at a
time runs the verb as a recovery probe — the first success clears the
state (see ``docs/server.md`` § Ops).

Start one from Python (tests, benchmarks)::

    server = make_server(port=0)           # port 0: pick a free port
    server.start_background()
    ...                                    # drive it via repro.client
    server.shutdown()

or from the CLI: ``repro serve --port 8765 --max-sessions 64``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.server.core import (
    BadRequest,
    Response,
    ServiceCore,
    parse_body_bytes,
)
from repro.server.durability import (
    DEFAULT_SNAPSHOT_EVERY,
    MAX_UNDO_TOKENS,
    SessionJournal,
    SessionStore,
)
from repro.server.hosting import (
    DEFAULT_DEGRADED_AFTER,
    DuplicateSessionError,
    HostedSession,
    ServerMetrics,
    SessionDegradedError,
    SessionManager,
    UnknownSessionError,
)
from repro.server.wire import WIRE_VERSION

__all__ = [
    "ReproHTTPServer",
    "SessionManager",
    "HostedSession",
    "ServerMetrics",
    "ServiceCore",
    "UnknownSessionError",
    "DuplicateSessionError",
    "SessionDegradedError",
    "DEFAULT_DEGRADED_AFTER",
    "MAX_UNDO_TOKENS",
    "DEFAULT_SNAPSHOT_EVERY",
    "WIRE_VERSION",
    "SessionJournal",
    "SessionStore",
    "make_server",
    "make_async_server",
    "serve",
]


class ReproHTTPServer(ThreadingHTTPServer):
    """The legacy thread-per-request transport over the shared core."""

    daemon_threads = True
    allow_reuse_address = True
    # the stdlib default backlog of 5 resets connections under benchmark
    # fan-in (hundreds of clients connecting at once)
    request_queue_size = 128

    def __init__(
        self,
        address: Tuple[str, int],
        max_sessions: int = 64,
        data_root: Optional[Path] = None,
        state_dir: Optional[Path] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = True,
        degraded_after: int = DEFAULT_DEGRADED_AFTER,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.manager = SessionManager(
            max_sessions,
            data_root=data_root,
            state_dir=state_dir,
            snapshot_every=snapshot_every,
            fsync=fsync,
        )
        self.metrics = ServerMetrics()
        self.core = ServiceCore(self.manager, self.metrics, degraded_after)
        self.degraded_after = self.core.degraded_after
        self.started = self.core.started
        self.verbose = verbose
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------

    @property
    def base_url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"

    def start_background(self) -> threading.Thread:
        """Serve requests on a daemon thread (tests, benchmarks)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        self._thread = thread
        return thread

    def shutdown(self) -> None:  # type: ignore[override]
        super().shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.manager.close_all()
        self.server_close()

    # -- documents (delegated; kept for tests and benchmarks) ------------

    def health_document(self) -> Dict[str, Any]:
        return self.core.health_document()

    def metrics_document(self) -> Dict[str, Any]:
        return self.core.metrics_document()

    def metrics_document_base(self) -> Dict[str, Any]:
        return self.core.metrics_document_base()


class _Handler(BaseHTTPRequestHandler):
    server: ReproHTTPServer  # narrowed for type checkers
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _read_body(self) -> Any:
        self._body_read = True
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        return parse_body_bytes(self.rfile.read(length))

    def _drain_body(self) -> None:
        """Consume an unread request body before responding.

        Connections are HTTP/1.1 keep-alive: if a handler errors before
        reading the declared body (unknown route, unknown session), the
        unread bytes would be parsed as the next request line on the
        reused socket — a protocol desync.
        """
        if getattr(self, "_body_read", False):
            return
        self._body_read = True
        length = int(self.headers.get("Content-Length") or 0)
        if length > 0:
            self.rfile.read(length)

    def _dispatch(self, method: str) -> None:
        # one handler instance serves many requests on a keep-alive
        # connection: the body-consumed flag is per-request state
        self._body_read = False
        response: Response = self.server.core.handle(
            method, self.path, self._read_body
        )
        self._drain_body()
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PUT(self) -> None:
        self._dispatch("PUT")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def make_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    max_sessions: int = 64,
    data_root: Optional[Path] = None,
    state_dir: Optional[Path] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    fsync: bool = True,
    degraded_after: int = DEFAULT_DEGRADED_AFTER,
    verbose: bool = False,
) -> ReproHTTPServer:
    """Build a threaded server (not yet serving); ``port=0`` picks a free
    port.  This is the *legacy* transport — new deployments should prefer
    :func:`make_async_server`; tests and benchmarks that predate the async
    front end keep working against this one unchanged."""
    return ReproHTTPServer(
        (host, port), max_sessions=max_sessions, data_root=data_root,
        state_dir=state_dir, snapshot_every=snapshot_every, fsync=fsync,
        degraded_after=degraded_after, verbose=verbose,
    )


def make_async_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    max_sessions: int = 64,
    data_root: Optional[Path] = None,
    state_dir: Optional[Path] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    fsync: bool = True,
    degraded_after: int = DEFAULT_DEGRADED_AFTER,
    verbose: bool = False,
) -> "Any":
    """Build the asyncio server (same knobs and lifecycle as
    :func:`make_server`: ``base_url`` / ``start_background()`` /
    ``shutdown()``)."""
    from repro.server.aio import AsyncReproServer

    return AsyncReproServer(
        (host, port), max_sessions=max_sessions, data_root=data_root,
        state_dir=state_dir, snapshot_every=snapshot_every, fsync=fsync,
        degraded_after=degraded_after, verbose=verbose,
    )


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    max_sessions: int = 64,
    data_root: Optional[Path] = None,
    state_dir: Optional[Path] = None,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    degraded_after: int = DEFAULT_DEGRADED_AFTER,
    verbose: bool = True,
    legacy_threaded: bool = False,
) -> int:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop).

    Boots the asyncio front end by default; ``legacy_threaded=True``
    (the ``--legacy-threaded`` flag) keeps the old thread-per-request
    server for one release."""
    import sys

    factory = make_server if legacy_threaded else make_async_server
    server = factory(
        host, port, max_sessions=max_sessions, data_root=data_root,
        state_dir=state_dir, snapshot_every=snapshot_every,
        degraded_after=degraded_after, verbose=verbose,
    )
    durable = ""
    if state_dir is not None:
        cold = len(server.manager.cold_session_ids())
        durable = f", durable state in {state_dir} ({cold} recoverable)"
    print(
        f"repro server listening on {server.base_url} "
        f"(max {max_sessions} sessions{durable})",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.manager.close_all()
        server.server_close()
    return 0


# referenced by type checkers / kept importable for callers that matched
# on the internal names before the core extraction
_BadRequest = BadRequest
