"""The asyncio front end of the constraint service.

One event loop accepts every connection (256 idle keep-alive clients
cost file descriptors, not threads), and requests split by verb class:

* **snapshot reads** — ``detect`` on an unchanged engine and
  ``GET .../rules`` — answer *inline on the loop* from cached response
  bytes, validated against the session's relation-version fingerprint
  (:meth:`repro.session.Session.state_fingerprint`, the same shape the
  parallel executor keys its warm caches on).  No session lock, no
  thread handoff: a reader can never queue behind a writer.
* **write verbs** (``apply``/``undo``/``repair``/rules writes) serialize
  per session on an :class:`asyncio.Lock` and run the shared
  :class:`~repro.server.core.ServiceCore` handler on a worker thread;
  the completed write invalidates the session's snapshot, and the next
  read re-publishes one at the new fingerprint.
* everything else (health, metrics, listings, creates) runs the core
  handler on a worker thread without session-level coordination — those
  paths are already lock-free or non-blocking by construction.

CPU-heavy detection still fans out across *processes*: sessions
configured with the parallel executor dispatch shard jobs to the
persistent (optionally worker-pinned — ``REPRO_PIN_WORKERS``) pool of
:mod:`repro.engine.parallel`, so one session's detect uses every core
while the event loop keeps answering cheap reads.

Durability, degraded gating, eviction tombstones and metrics are all the
shared core's — the async and threaded transports produce byte-identical
wire documents (the differential suite replays the same histories
against both and compares every body).

Snapshot-correctness argument, in one place:

* a snapshot is published only *while holding the session's asyncio
  lock*, after the verb handler completed, with the fingerprint read
  under that lock — so the cached bytes and fingerprint always agree;
* every mutating path on this server holds the same asyncio lock, so a
  published fingerprint can only be observed concurrently with *reads*;
* relation versions are monotonic: any committed mutation bumps at least
  one version, so a hit (fingerprint equality, checked dirty) proves no
  mutation committed since publication — a torn read can only *miss*;
* the snapshot pins strong references to the database and rules objects
  backing its ``id()``-based fingerprint components, so a recycled id
  can never alias a new object into a false hit;
* hits additionally require the hosted session to be the manager's
  current, non-closed, non-degraded resident — degraded sessions answer
  through the gated (503-producing) path exactly like the threaded
  server, and evicted/rehydrated sessions miss (different object).
"""

from __future__ import annotations

import asyncio
import functools
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.engine.config import engine_config_from_document
from repro.server.core import (
    Response,
    ServiceCore,
    parse_body_bytes,
    status_reason,
)
from repro.server.durability import DEFAULT_SNAPSHOT_EVERY
from repro.server.hosting import (
    DEFAULT_DEGRADED_AFTER,
    HostedSession,
    ServerMetrics,
    SessionManager,
    UnknownSessionError,
)
from repro.server.wire import split_wire_version

__all__ = ["AsyncReproServer", "SessionSnapshot"]

#: session verbs that mutate state: their completion invalidates the
#: session's snapshot (rules handles PUT and POST)
_WRITE_VERBS = frozenset({"apply", "undo", "repair", "rules"})

#: verbs that serialize on the session's asyncio lock — the write verbs
#: plus the two snapshot-publishing reads (publication must be raceless)
_LOCKED_VERBS = frozenset({"detect", "apply", "undo", "repair", "rules"})


class SessionSnapshot:
    """Immutable read cache for one session at one fingerprint.

    ``cache`` maps read keys — ``("rules",)`` or
    ``("detect", executor, shards, include_violations)`` — to fully
    rendered :class:`Response` objects.  ``pinned`` holds the database
    and rules objects whose ``id()``s appear in the fingerprint.
    """

    __slots__ = ("hosted", "fingerprint", "pinned", "cache")

    def __init__(
        self,
        hosted: HostedSession,
        fingerprint: tuple,
        pinned: tuple,
    ) -> None:
        self.hosted = hosted
        self.fingerprint = fingerprint
        self.pinned = pinned
        self.cache: Dict[tuple, Response] = {}


def _detect_cache_key(body: Any) -> Optional[tuple]:
    """The canonical cache key of a detect body, or ``None`` when the
    body is anything but a plain well-formed detect request."""
    if body is None:
        body = {}
    if not isinstance(body, Mapping):
        return None
    if set(body) - {"engine", "include_violations"}:
        return None
    try:
        executor, shards = engine_config_from_document(body)
    except Exception:
        return None
    return ("detect", executor, shards, bool(body.get("include_violations", True)))


class AsyncReproServer:
    """The asyncio transport over the shared service core.

    Lifecycle mirrors :class:`~repro.server.ReproHTTPServer` (tests and
    benchmarks swap one for the other): the listening socket binds in
    ``__init__`` (``port=0`` resolves immediately), ``serve_forever()``
    blocks, ``start_background()`` serves from a daemon thread, and
    ``shutdown()`` stops the loop and flushes every session.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        max_sessions: int = 64,
        data_root: Optional[Path] = None,
        state_dir: Optional[Path] = None,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = True,
        degraded_after: int = DEFAULT_DEGRADED_AFTER,
        verbose: bool = False,
    ) -> None:
        self.manager = SessionManager(
            max_sessions,
            data_root=data_root,
            state_dir=state_dir,
            snapshot_every=snapshot_every,
            fsync=fsync,
        )
        self.metrics = ServerMetrics()
        self.core = ServiceCore(self.manager, self.metrics, degraded_after)
        self.degraded_after = self.core.degraded_after
        self.started = self.core.started
        self.verbose = verbose
        # bind eagerly so base_url is valid before the loop starts; a deep
        # listen backlog keeps benchmark-scale connection fan-in (hundreds
        # of clients connecting at once) from seeing resets
        self._socket = socket.create_server(
            address, backlog=256, reuse_port=False
        )
        self.server_address: Tuple[str, int] = self._socket.getsockname()[:2]
        # the core's verb handlers block (session locks, WAL fsync, CPU);
        # they run here so the loop never does — sized for many concurrent
        # sessions, not for CPU parallelism (the process pool covers that)
        self._executor = ThreadPoolExecutor(
            max_workers=32, thread_name_prefix="repro-verb"
        )
        self._locks: Dict[str, asyncio.Lock] = {}
        self._snapshots: Dict[str, SessionSnapshot] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def base_url(self) -> str:
        host, port = self.server_address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Run the event loop in the calling thread until shutdown."""
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, sock=self._socket
        )
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()

    def start_background(self) -> threading.Thread:
        """Serve requests on a daemon thread (tests, benchmarks)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        self._thread = thread
        if not self._ready.wait(timeout=10):
            raise RuntimeError("async server failed to start within 10s")
        return thread

    def _signal_stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)

    def shutdown(self) -> None:
        """Stop serving, flush every session, release the socket."""
        self._signal_stop()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self.manager.close_all()
        self.server_close()

    def server_close(self) -> None:
        """Release the listening socket and the worker threads."""
        if self._closed:
            return
        self._closed = True
        self._signal_stop()
        self._executor.shutdown(wait=False, cancel_futures=True)
        try:
            self._socket.close()
        except OSError:
            pass

    # -- documents (parity with the threaded server) ---------------------

    def health_document(self) -> Dict[str, Any]:
        return self.core.health_document()

    def metrics_document(self) -> Dict[str, Any]:
        return self.core.metrics_document()

    def metrics_document_base(self) -> Dict[str, Any]:
        return self.core.metrics_document_base()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    return
                method, target, keep_alive, body = request
                response = await self._respond(method, target, body)
                self._write_response(writer, response, keep_alive)
                await writer.drain()
                if not keep_alive:
                    return
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            asyncio.LimitOverrunError,
        ):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> Optional[Tuple[str, str, bool, bytes]]:
        """Parse one HTTP/1.1 request; ``None`` ends the connection."""
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, version = (
                request_line.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except ValueError:
            self._write_response(
                writer,
                self.core.handle("BAD", "/v1/__malformed__", lambda: None),
                keep_alive=False,
            )
            await writer.drain()
            return None
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if not line:
                return None
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            return None
        body = await reader.readexactly(length) if length > 0 else b""
        connection = headers.get("connection", "").lower()
        keep_alive = version.upper() != "HTTP/1.0" and connection != "close"
        return method.upper(), target, keep_alive, body

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        response: Response,
        keep_alive: bool,
    ) -> None:
        head = [
            f"HTTP/1.1 {response.status} {status_reason(response.status)}",
            f"Content-Type: {response.content_type}",
            f"Content-Length: {len(response.body)}",
        ]
        for name, value in response.headers:
            head.append(f"{name}: {value}")
        if not keep_alive:
            head.append("Connection: close")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + response.body
        )

    # -- dispatch --------------------------------------------------------

    async def _respond(self, method: str, target: str, body: bytes) -> Response:
        fast = self._snapshot_read(method, target, body)
        if fast is not None:
            return fast
        read_body = functools.partial(parse_body_bytes, body)
        call = functools.partial(self.core.handle, method, target, read_body)
        loop = asyncio.get_running_loop()
        route = self._session_route(method, target)
        if route is None:
            return await loop.run_in_executor(self._executor, call)
        session_id, verb = route
        async with self._session_lock(session_id):
            response = await loop.run_in_executor(self._executor, call)
            self._after_session_verb(
                session_id, verb, method, target, body, response
            )
        if verb == "" and method == "DELETE":
            # the session is gone; its lock object must not pin memory
            self._locks.pop(session_id, None)
        return response

    def _session_lock(self, session_id: str) -> asyncio.Lock:
        lock = self._locks.get(session_id)
        if lock is None:
            lock = self._locks[session_id] = asyncio.Lock()
        return lock

    @staticmethod
    def _session_route(method: str, target: str) -> Optional[Tuple[str, str]]:
        """``(session_id, verb)`` for requests that serialize per session.

        ``verb`` is ``""`` for ``DELETE /v1/sessions/{id}``.  Everything
        else — service endpoints, listings, creates, info reads,
        diagnostics — returns ``None`` and runs without the asyncio lock
        (their session access is lock-free or internally synchronized).
        """
        path = target.split("?", 1)[0]
        version, rest = split_wire_version(path)
        if version != 1:
            return None
        parts = [p for p in rest.split("/") if p]
        if len(parts) == 2 and parts[0] == "sessions" and method == "DELETE":
            return parts[1], ""
        if len(parts) == 3 and parts[0] == "sessions":
            verb = parts[2]
            if verb in _LOCKED_VERBS and not (
                verb == "rules" and method == "GET"
            ):
                return parts[1], verb
            if verb == "rules" and method == "GET":
                return parts[1], verb
        return None

    # -- the snapshot layer ----------------------------------------------

    def _snapshot_read(
        self, method: str, target: str, body: bytes
    ) -> Optional[Response]:
        """Serve a read from cached bytes when provably still current.

        Runs inline on the event loop: the only synchronization it takes
        is the manager's table lock inside ``manager.get`` (LRU bump +
        request accounting, never held across verb handlers).  Returns
        ``None`` on any miss — the caller falls through to the full path.
        """
        started = time.perf_counter()
        path = target.split("?", 1)[0]
        if "?" in target:
            return None  # query strings never hit the cache
        version, rest = split_wire_version(path)
        if version != 1:
            return None
        parts = [p for p in rest.split("/") if p]
        if len(parts) != 3 or parts[0] != "sessions":
            return None
        session_id, verb = parts[1], parts[2]
        if verb == "rules" and method == "GET":
            key: Optional[tuple] = ("rules",)
        elif verb == "detect" and method == "POST":
            try:
                key = _detect_cache_key(parse_body_bytes(body) if body else None)
            except Exception:
                return None  # unparseable body: the slow path renders the 400
        else:
            return None
        if key is None:
            return None
        snapshot = self._snapshots.get(session_id)
        if snapshot is None:
            return None
        cached = snapshot.cache.get(key)
        if cached is None:
            return None
        try:
            hosted = self.manager.get(session_id)
        except UnknownSessionError:
            return None
        if (
            hosted is not snapshot.hosted
            or hosted.closed
            or hosted.is_degraded
            or hosted.session.state_fingerprint() != snapshot.fingerprint
        ):
            return None
        self.metrics.record(
            cached.endpoint, cached.status, time.perf_counter() - started
        )
        return cached

    def _after_session_verb(
        self,
        session_id: str,
        verb: str,
        method: str,
        target: str,
        body: bytes,
        response: Response,
    ) -> None:
        """Maintain the snapshot layer after a locked verb completed.

        Called while still holding the session's asyncio lock, so the
        fingerprint read here cannot race another writer on this server.
        """
        if verb == "" or (verb in _WRITE_VERBS and method != "GET"):
            # session deleted or mutated: whatever was cached is stale
            self._snapshots.pop(session_id, None)
            return
        if response.status != 200:
            return
        if verb == "rules" and method == "GET":
            key: Optional[tuple] = ("rules",)
        elif verb == "detect" and method == "POST":
            if "?" in target:
                return
            try:
                key = _detect_cache_key(parse_body_bytes(body) if body else None)
            except Exception:
                return
        else:
            return
        if key is None:
            return
        try:
            hosted = self.manager.get(session_id)
        except UnknownSessionError:
            return
        if hosted.closed or hosted.is_degraded:
            return
        session = hosted.session
        fingerprint = session.state_fingerprint()
        snapshot = self._snapshots.get(session_id)
        if (
            snapshot is None
            or snapshot.hosted is not hosted
            or snapshot.fingerprint != fingerprint
        ):
            snapshot = SessionSnapshot(
                hosted,
                fingerprint,
                pinned=(session.database, session.rules),
            )
            self._snapshots[session_id] = snapshot
        snapshot.cache[key] = response
