"""Prometheus text exposition for the server's JSON metrics document.

``GET /metrics`` serves a nested JSON document (``ReproHTTPServer.
metrics_document``); ``GET /metrics?format=prometheus`` feeds the same
document through :func:`prometheus_text` to produce the standard text
format (version 0.0.4) that a Prometheus scraper — or the regression
test's minimal parser — consumes.  The mapping is total: every leaf
metric in the JSON document appears as a sample here (``seconds_avg`` is
the one derived exception — Prometheus convention is to expose the
``_sum``/``_count`` pair and let the query layer divide).

Everything is rendered deterministically: family order is fixed by the
tables below, label values are sorted, floats go through ``repr`` — two
scrapes of the same document are byte-identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

__all__ = ["LATENCY_BUCKETS", "prometheus_text"]

#: upper bounds (seconds) of the request-latency histogram buckets; the
#: implicit ``+Inf`` bucket is appended by the recorder.
LATENCY_BUCKETS: Tuple[float, ...] = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5)

#: JSON section -> (json key, prometheus family, type, help) per scalar.
_SCALARS: Tuple[Tuple[str, str, str, str, str], ...] = (
    ("", "uptime_seconds", "repro_uptime_seconds", "gauge",
     "Seconds since the server started."),
    ("", "requests_total", "repro_requests_total", "counter",
     "HTTP requests handled, any endpoint, any status."),
    ("sessions", "open", "repro_sessions_open", "gauge",
     "Resident (warm) hosted sessions."),
    ("sessions", "max_sessions", "repro_sessions_max", "gauge",
     "LRU eviction threshold for resident sessions."),
    ("sessions", "created_total", "repro_sessions_created_total", "counter",
     "Sessions created over the server lifetime."),
    ("sessions", "evicted_total", "repro_sessions_evicted_total", "counter",
     "Sessions evicted by LRU pressure."),
    ("sessions", "closed_total", "repro_sessions_closed_total", "counter",
     "Sessions closed by DELETE."),
    ("engines", "warm_delta_engines", "repro_warm_delta_engines", "gauge",
     "Hosted sessions with a built delta engine."),
    ("engines", "warm_parallel_executors", "repro_warm_parallel_executors",
     "gauge", "Hosted sessions with a live parallel worker pool."),
    ("engines", "maintained_violations", "repro_maintained_violations",
     "gauge", "Violations currently maintained across warm delta engines."),
    ("degraded", "threshold", "repro_degraded_threshold", "gauge",
     "Consecutive handler failures that degrade a session (0 = disabled)."),
    ("degraded", "sessions_degraded", "repro_sessions_degraded", "gauge",
     "Resident sessions currently in the degraded state."),
    ("degraded", "degraded_total", "repro_sessions_degraded_total", "counter",
     "Times any session entered the degraded state."),
    ("degraded", "handler_failures_total", "repro_handler_failures_total",
     "counter", "Server-side (5xx-class) verb handler failures."),
    ("degraded", "probes_total", "repro_degraded_probes_total", "counter",
     "Recovery probes run against degraded sessions."),
    ("degraded", "recoveries_total", "repro_degraded_recoveries_total",
     "counter", "Degraded sessions recovered by a successful probe."),
    ("degraded", "rejected_total", "repro_degraded_rejected_total", "counter",
     "Requests fast-rejected (503) while a recovery probe was in flight."),
)

#: delta_stats counters, rendered as repro_delta_<field>_total.
_DELTA_FIELDS: Tuple[str, ...] = (
    "batches",
    "ops_applied",
    "keys_patched",
    "keys_reevaluated",
    "inclusion_keys_touched",
    "fallback_rescans",
)

#: durability counters from SessionStore.counters_snapshot().
_DURABILITY_COUNTERS: Tuple[str, ...] = (
    "snapshots_total",
    "snapshot_failures_total",
    "wal_records_total",
    "rehydrated_total",
    "flushed_total",
)


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _sample(name: str, labels: Mapping[str, str], value: Any) -> str:
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(str(labels[key]))}"'
            for key in sorted(labels)
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


class _Family:
    """One metric family: the TYPE/HELP header plus its samples."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.samples: List[str] = []

    def add(self, value: Any, labels: Mapping[str, str] | None = None,
            suffix: str = "") -> None:
        self.samples.append(_sample(self.name + suffix, labels or {}, value))

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}",
                 f"# TYPE {self.name} {self.kind}"]
        lines.extend(self.samples)
        return lines


def prometheus_text(document: Mapping[str, Any]) -> str:
    """Render the ``/metrics`` JSON document as Prometheus text format."""
    families: List[_Family] = []

    def family(name: str, kind: str, help_text: str) -> _Family:
        fam = _Family(name, kind, help_text)
        families.append(fam)
        return fam

    sections: Dict[str, Mapping[str, Any]] = {}
    for key in ("sessions", "engines", "degraded", "durability"):
        value = document.get(key)
        sections[key] = value if isinstance(value, Mapping) else {}

    for section, json_key, name, kind, help_text in _SCALARS:
        source: Mapping[str, Any] = sections[section] if section else document
        if json_key not in source:
            continue
        family(name, kind, help_text).add(source[json_key])

    responses = document.get("responses")
    if isinstance(responses, Mapping):
        fam = family("repro_responses_total", "counter",
                     "HTTP responses by status code.")
        for status in sorted(responses):
            fam.add(responses[status], {"status": str(status)})

    endpoints = document.get("endpoints")
    if isinstance(endpoints, Mapping):
        histogram = family(
            "repro_request_duration_seconds", "histogram",
            "Request latency per endpoint template.")
        maxima = family(
            "repro_request_duration_seconds_max", "gauge",
            "Worst observed request latency per endpoint template.")
        for endpoint in sorted(endpoints):
            stats = endpoints[endpoint]
            if not isinstance(stats, Mapping):
                continue
            labels = {"endpoint": str(endpoint)}
            buckets = stats.get("seconds_bucket")
            if isinstance(buckets, Mapping):
                for bound in [f"{b:g}" for b in LATENCY_BUCKETS] + ["+Inf"]:
                    if bound in buckets:
                        histogram.add(
                            buckets[bound],
                            {**labels, "le": bound},
                            suffix="_bucket",
                        )
            histogram.add(
                stats.get("seconds_total", 0.0), labels, suffix="_sum")
            histogram.add(stats.get("count", 0), labels, suffix="_count")
            maxima.add(stats.get("seconds_max", 0.0), labels)

    delta = sections["engines"].get("delta_stats")
    if isinstance(delta, Mapping):
        for field in _DELTA_FIELDS:
            if field not in delta:
                continue
            family(
                f"repro_delta_{field}_total", "counter",
                f"DeltaStats.{field} summed over warm delta engines.",
            ).add(delta[field])

    durability = sections["durability"]
    if durability:
        family(
            "repro_durability_enabled", "gauge",
            "1 when the server runs with a --state-dir, else 0.",
        ).add(bool(durability.get("enabled")))
        for counter in _DURABILITY_COUNTERS:
            if counter not in durability:
                continue
            family(
                f"repro_durability_{counter}", "counter",
                f"Durability store counter {counter}.",
            ).add(durability[counter])
        if "cold_sessions" in durability:
            family(
                "repro_durability_cold_sessions", "gauge",
                "Durable sessions on disk but not resident.",
            ).add(durability["cold_sessions"])

    lines: List[str] = []
    for fam in families:
        lines.extend(fam.render())
    return "\n".join(lines) + "\n"
