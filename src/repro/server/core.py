"""Transport-agnostic request handling for the constraint service.

:class:`ServiceCore` owns everything between "a request line arrived"
and "these are the exact response bytes": /v1 wire versioning, routing,
the verb handlers with degraded gating and durability, error→status
mapping, the versioned response envelope, and per-endpoint metrics
recording.  The asyncio front end (:mod:`repro.server.aio`) and the
legacy threaded server (:mod:`repro.server`) are both thin transports
over one core, which is what keeps their wire bytes *identical* —
the differential test replays the same histories against both and
byte-compares every body.

A request flows::

    transport -> core.handle(method, target, read_body) -> Response
    transport writes Response.status / .headers / .body

``read_body`` is a transport-supplied thunk returning the parsed JSON
body (or raising :class:`BadRequest`); the core calls it lazily so
unrouted requests never pay the parse.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

from repro.engine.config import engine_config_from_document
from repro.engine.delta import Changeset, StaleEngineError
from repro.errors import (
    DependencyError,
    DomainError,
    RepairError,
    ReproError,
    SchemaError,
)
from repro.server.hosting import (
    _DELTA_STAT_FIELDS,
    DuplicateSessionError,
    HostedSession,
    ServerMetrics,
    SessionDegradedError,
    SessionManager,
    UnknownSessionError,
)
from repro.server.metrics import prometheus_text
from repro.server.wire import (
    SUPPORTED_WIRE_VERSIONS,
    envelope,
    split_wire_version,
    unsupported_version_document,
)
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "BadRequest",
    "PlainText",
    "Response",
    "ServiceCore",
]

#: (error class, HTTP status) in match order — first isinstance hit wins
_ERROR_STATUS = (
    (SessionDegradedError, 503),
    (UnknownSessionError, 404),
    (DuplicateSessionError, 409),
    (StaleEngineError, 409),
    (RepairError, 400),
    (DependencyError, 400),
    (SchemaError, 400),
    (DomainError, 400),
    (ReproError, 400),
    (KeyError, 400),
    (ValueError, 400),
)


def _status_for(exc: BaseException) -> int:
    """Map a handler exception to its HTTP status (500 when unclassified)."""
    for error_cls, error_status in _ERROR_STATUS:
        if isinstance(exc, error_cls):
            return error_status
    return 500


class BadRequest(Exception):
    """Internal: malformed request envelope (not a library error)."""


class PlainText:
    """Marker: a route resolved to a non-JSON payload."""

    __slots__ = ("text", "content_type")

    def __init__(self, text: str, content_type: str) -> None:
        self.text = text
        self.content_type = content_type


class Response:
    """The fully rendered response a transport writes to its socket."""

    __slots__ = ("status", "body", "content_type", "headers", "endpoint")

    def __init__(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Tuple[Tuple[str, str], ...] = (),
        endpoint: str = "",
    ) -> None:
        self.status = status
        self.body = body
        self.content_type = content_type
        #: extra headers beyond Content-Type/Content-Length (redirects)
        self.headers = headers
        #: the metrics key this response was recorded under
        self.endpoint = endpoint


RouteResult = Tuple[str, int, Union[Dict[str, Any], PlainText]]
VerbResult = Tuple[str, int, Dict[str, Any]]
ReadBody = Callable[[], Any]


def parse_body_bytes(raw: bytes) -> Any:
    """Parse a request body (shared by both transports' ``read_body``)."""
    if not raw:
        return None
    try:
        return json.loads(raw)
    except json.JSONDecodeError as exc:
        raise BadRequest(f"request body is not valid JSON: {exc}") from exc


class ServiceCore:
    """The shared service: sessions, metrics, routing and verb handlers."""

    def __init__(
        self,
        manager: SessionManager,
        metrics: ServerMetrics,
        degraded_after: int,
    ) -> None:
        self.manager = manager
        self.metrics = metrics
        #: consecutive handler failures before a session degrades (0 = off)
        self.degraded_after = max(0, degraded_after)
        self.started = time.time()

    # -- service documents -----------------------------------------------

    def health_document(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started,
            "sessions": len(self.manager),
            "max_sessions": self.manager.max_sessions,
        }

    def metrics_document(self) -> Dict[str, Any]:
        manager = self.manager
        warm_engines = 0
        warm_parallel = 0
        delta_totals = {field: 0 for field in _DELTA_STAT_FIELDS}
        maintained_violations = 0
        degraded_sessions = 0
        for hosted in manager.list():
            # per-session lock, but never *wait* for one: a scrape must
            # not hang behind a long (or wedged) verb handler.  Busy
            # sessions fall back to dirty single-attribute reads and
            # skip the engine totals — a momentary undercount in a
            # gauge, not a stalled /metrics endpoint.
            if hosted.lock.acquire(blocking=False):
                try:
                    session = hosted.session
                    engine = session.warm_engine
                    if engine is not None:
                        warm_engines += 1
                        maintained_violations += engine.total_violations()
                        for field in delta_totals:
                            delta_totals[field] += getattr(
                                engine.stats, field
                            )
                    if session.has_warm_parallel:
                        warm_parallel += 1
                    if hosted.is_degraded:
                        degraded_sessions += 1
                finally:
                    hosted.lock.release()
            else:
                session = hosted.session
                if session.warm_engine is not None:
                    warm_engines += 1
                if session.has_warm_parallel:
                    warm_parallel += 1
                if hosted.is_degraded:
                    degraded_sessions += 1
        document = self.metrics_document_base()
        ops_counters = self.metrics.counters_snapshot()
        document["degraded"] = {
            "threshold": self.degraded_after,
            "sessions_degraded": degraded_sessions,
            "degraded_total": ops_counters["degraded_total"],
            "handler_failures_total": ops_counters["handler_failures_total"],
            "probes_total": ops_counters["probes_total"],
            "recoveries_total": ops_counters["recoveries_total"],
            "rejected_total": ops_counters["rejected_total"],
        }
        document["sessions"] = {
            "open": len(manager),
            "max_sessions": manager.max_sessions,
            "created_total": manager.created_total,
            "evicted_total": manager.evicted_total,
            "closed_total": manager.closed_total,
        }
        document["engines"] = {
            "warm_delta_engines": warm_engines,
            "warm_parallel_executors": warm_parallel,
            "maintained_violations": maintained_violations,
            "delta_stats": delta_totals,
        }
        if manager.store is not None:
            durability: Dict[str, Any] = {"enabled": True}
            durability.update(manager.store.counters_snapshot())
            durability["cold_sessions"] = len(manager.cold_session_ids())
            document["durability"] = durability
        else:
            document["durability"] = {"enabled": False}
        return document

    def metrics_document_base(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "uptime_seconds": time.time() - self.started
        }
        document.update(self.metrics.snapshot())
        return document

    # -- response rendering ----------------------------------------------

    @staticmethod
    def render_json(document: Mapping[str, Any]) -> bytes:
        """The canonical wire bytes for a JSON document (enveloped)."""
        return (
            json.dumps(envelope(document), indent=2, default=str) + "\n"
        ).encode("utf-8")

    def _json_response(
        self,
        endpoint: str,
        status: int,
        document: Mapping[str, Any],
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> Response:
        return Response(
            status,
            self.render_json(document),
            "application/json",
            headers=headers,
            endpoint=endpoint,
        )

    # -- request handling --------------------------------------------------

    def handle(self, method: str, target: str, read_body: ReadBody) -> Response:
        """Resolve one request end-to-end and record its metrics.

        Never raises: every handler exception renders as the matching
        JSON error document (transport-level I/O failures while *writing*
        the response are the transport's problem).
        """
        started = time.perf_counter()
        response = self._handle(method, target, read_body)
        self.metrics.record(
            response.endpoint, response.status, time.perf_counter() - started
        )
        return response

    def _handle(self, method: str, target: str, read_body: ReadBody) -> Response:
        split = urlsplit(target)
        version, rest = split_wire_version(split.path)
        # the metrics key is the route *template* on the version-stripped
        # path (session ids → "{id}") whatever the outcome — raw paths or
        # per-version keys would grow the metrics table without bound
        # under probes against many distinct ids or /v999 prefixes
        endpoint = self._endpoint_template(method, rest)
        if version is None:
            # pre-/v1 client: permanent redirect onto the versioned
            # mount, flagged deprecated (one release of grace)
            location = "/v1" + (split.path if split.path.startswith("/") else "/" + split.path)
            if split.query:
                location += "?" + split.query
            return self._json_response(
                endpoint,
                301,
                {
                    "error": (
                        f"unversioned paths are deprecated; this endpoint "
                        f"moved to {location}"
                    ),
                    "type": "MovedPermanently",
                    "location": location,
                },
                headers=(("Location", location), ("Deprecation", "true")),
            )
        if version not in SUPPORTED_WIRE_VERSIONS:
            return self._json_response(
                endpoint, 404, unsupported_version_document(version)
            )
        try:
            endpoint, status, document = self._route(
                method, rest, split.query, read_body
            )
            if isinstance(document, PlainText):
                return Response(
                    status,
                    document.text.encode("utf-8"),
                    document.content_type,
                    endpoint=endpoint,
                )
            return self._json_response(endpoint, status, document)
        except BadRequest as exc:
            return self._json_response(
                endpoint, 400, {"error": str(exc), "type": "BadRequest"}
            )
        except Exception as exc:
            status = _status_for(exc)
            message = str(exc) if not isinstance(exc, KeyError) else repr(exc)
            body: Dict[str, Any] = {
                "error": message,
                "type": type(exc).__name__,
            }
            if isinstance(exc, SessionDegradedError):
                body["degraded"] = exc.document
            return self._json_response(endpoint, status, body)

    @staticmethod
    def _endpoint_template(method: str, path: str) -> str:
        parts = [p for p in path.split("/") if p]
        if parts and parts[0] == "sessions":
            if len(parts) == 2:
                parts = ["sessions", "{id}"]
            elif len(parts) >= 3:
                parts = ["sessions", "{id}", parts[2]]
        return f"{method} /" + "/".join(parts)

    # -- routing ---------------------------------------------------------

    def _route(
        self, method: str, path: str, query: str, read_body: ReadBody
    ) -> RouteResult:
        """Resolve one request; returns (endpoint template, status, doc)."""
        parts = [p for p in path.split("/") if p]

        if parts == ["healthz"] and method == "GET":
            return "GET /healthz", 200, self.health_document()
        if parts == ["metrics"] and method == "GET":
            fmt = parse_qs(query).get("format", ["json"])[-1]
            if fmt not in ("json", "prometheus"):
                raise BadRequest(
                    f"unknown metrics format {fmt!r} (expected json or "
                    "prometheus)"
                )
            metrics_doc = self.metrics_document()
            if fmt == "prometheus":
                return (
                    "GET /metrics",
                    200,
                    PlainText(
                        prometheus_text(metrics_doc),
                        "text/plain; version=0.0.4; charset=utf-8",
                    ),
                )
            return "GET /metrics", 200, metrics_doc

        manager = self.manager
        if parts and parts[0] == "sessions":
            if len(parts) == 1:
                if method == "GET":
                    # lock-free by construction: ``info()`` reads dirty
                    # snapshots, so a wedged verb handler on one session
                    # cannot hang the whole enumeration
                    document: Dict[str, Any] = {
                        "sessions": [h.info() for h in manager.list()]
                    }
                    if manager.store is not None:
                        document["cold_sessions"] = manager.cold_session_ids()
                    return "GET /sessions", 200, document
                if method == "POST":
                    body = read_body() or {}
                    if not isinstance(body, Mapping):
                        raise BadRequest(
                            "session creation body must be a JSON object"
                        )
                    hosted = manager.create(body)
                    return "POST /sessions", 201, hosted.info()
            elif len(parts) == 2:
                session_id = parts[1]
                if method == "GET":
                    return (
                        "GET /sessions/{id}",
                        200,
                        manager.get(session_id).info(),
                    )
                if method == "DELETE":
                    removed = manager.remove(session_id)
                    return (
                        "DELETE /sessions/{id}",
                        200,
                        {"session": removed, "closed": True},
                    )
            elif len(parts) == 3:
                return self._route_session_verb(
                    method, parts[1], parts[2], read_body
                )

        raise BadRequest(f"no route for {method} {path}")

    def _route_session_verb(
        self, method: str, session_id: str, verb: str, read_body: ReadBody
    ) -> VerbResult:
        manager = self.manager
        if verb == "diagnostics" and method == "GET":
            # ungated: diagnostics must stay readable while degraded
            while True:
                hosted = manager.get(session_id)
                try:
                    document = hosted.diagnostics()
                except Exception:
                    if hosted.closed:
                        continue  # read a dying session; re-resolve
                    raise
                if hosted.closed:
                    continue  # evicted under us; re-resolve
                return ("GET /sessions/{id}/diagnostics", 200, document)
        if verb == "rules" and method == "GET":
            # ungated read: serving the rule documents never runs the
            # engine, so it says nothing about (and needs nothing from)
            # the session's health
            while True:
                hosted = manager.get(session_id)
                with hosted.lock:
                    if hosted.closed:
                        continue  # evicted under us; re-resolve
                    return (
                        "GET /sessions/{id}/rules",
                        200,
                        {"rules": hosted.session.rules_documents()},
                    )
        if verb == "rules" and method in ("PUT", "POST"):
            body = read_body()
            return self._run_gated(
                session_id,
                lambda hosted: self._handle_rules_write(hosted, method, body),
            )
        if method != "POST":
            raise BadRequest(
                f"no route for {method} /sessions/{{id}}/{verb}"
            )
        body = read_body()
        if verb == "detect":
            return self._run_gated(
                session_id, lambda hosted: self._handle_detect(hosted, body)
            )
        if verb == "apply":
            return self._run_gated(
                session_id, lambda hosted: self._handle_apply(hosted, body)
            )
        if verb == "undo":
            return self._run_gated(
                session_id, lambda hosted: self._handle_undo(hosted, body)
            )
        if verb == "repair":
            return self._run_gated(
                session_id, lambda hosted: self._handle_repair(hosted, body)
            )
        raise BadRequest(f"no route for POST /sessions/{{id}}/{verb}")

    # -- degraded gating ---------------------------------------------------

    def _run_gated(
        self,
        session_id: str,
        handler: Callable[[HostedSession], VerbResult],
    ) -> VerbResult:
        """Resolve the session and run ``handler`` under degraded gating.

        Re-resolves when the resolved object was closed between lookup
        and lock acquisition (LRU eviction racing the request) — the
        retry lands on the rehydrated copy, or 404s if the session is
        truly gone."""
        while True:
            hosted = self.manager.get(session_id)
            result = self.gated_verb(hosted, handler)
            if result is not None:
                return result

    def gated_verb(
        self,
        hosted: HostedSession,
        handler: Callable[[HostedSession], VerbResult],
    ) -> Optional[VerbResult]:
        """Run one verb handler under the session lock with degraded gating.

        A session that failed ``degraded_after`` consecutive times is
        *degraded*: the next request to reach its lock runs the verb as a
        recovery probe (a success clears the state and answers normally),
        while requests arriving during an in-flight probe are rejected
        with a fast 503 instead of queueing behind a likely-failing
        handler.  Failure accounting is 5xx-only — client errors (bad
        documents, unknown undo tokens) say nothing about session health.
        The lock is released on every path: a degraded session can never
        poison it.

        Returns ``None`` when the session object was closed before the
        lock was won — the caller (:meth:`_run_gated`) re-resolves.
        """
        threshold = self.degraded_after
        if threshold and hosted.is_degraded and hosted.probe_in_flight:
            # dirty read by design: the worst a race costs is one extra
            # request queueing for the lock and becoming the next probe
            self.metrics.count("rejected_total")
            raise SessionDegradedError(
                f"session {hosted.id!r} is degraded and a recovery probe "
                "is already in flight; retry shortly",
                hosted.degraded_document(),
            )
        wait_from = time.perf_counter()
        with hosted.lock:
            if hosted.closed:
                return None
            hosted.note_lock_wait(time.perf_counter() - wait_from)
            probing = bool(threshold) and hosted.is_degraded
            if probing:
                hosted.probe_in_flight = True
                self.metrics.count("probes_total")
            try:
                result = handler(hosted)
            except Exception as exc:
                if threshold and _status_for(exc) >= 500:
                    self.metrics.count("handler_failures_total")
                    if hosted.record_failure(str(exc), threshold):
                        self.metrics.count("degraded_total")
                    if hosted.is_degraded:
                        raise SessionDegradedError(
                            f"session {hosted.id!r} is degraded after "
                            f"{hosted.failures} consecutive failures; the "
                            f"next request probes for recovery (last "
                            f"error: {exc})",
                            hosted.degraded_document(),
                        ) from exc
                raise
            else:
                if threshold and hosted.record_success():
                    self.metrics.count("recoveries_total")
                return result
            finally:
                if probing:
                    hosted.probe_in_flight = False

    # -- verbs (all run under the hosted session's lock) -----------------

    @staticmethod
    def _handle_detect(hosted: HostedSession, body: Any) -> VerbResult:
        body = body or {}
        if not isinstance(body, Mapping):
            raise BadRequest("detect body must be a JSON object (or empty)")
        executor, shards = engine_config_from_document(body)
        report = hosted.session.detect(executor=executor, shards=shards)
        document = report.to_dict(
            include_violations=bool(body.get("include_violations", True))
        )
        return "POST /sessions/{id}/detect", 200, document

    @staticmethod
    def _delta_document(hosted: HostedSession, delta: Any) -> Dict[str, Any]:
        from repro.session import ViolationReport

        return {
            "added": [
                ViolationReport._violation_to_dict(v) for v in delta.added
            ],
            "removed": [
                ViolationReport._violation_to_dict(v) for v in delta.removed
            ],
            "remaining": delta.remaining,
            "clean": delta.clean_after,
            "undo_token": hosted.remember_undo(delta.undo),
        }

    def _handle_apply(self, hosted: HostedSession, body: Any) -> VerbResult:
        if not isinstance(body, Mapping):
            raise BadRequest(
                "apply body must be a changeset document {\"ops\": [...]}"
            )
        changeset = Changeset.from_dict(body)
        saved_undo = hosted.undo_state()
        delta = hosted.session.apply(changeset)
        document = self._delta_document(hosted, delta)
        # WAL after the apply committed, before the response does: the
        # canonical changeset (not the raw body) replays deterministically
        try:
            hosted.persist_apply(changeset.to_dict(), document["undo_token"])
        except BaseException:
            # the record did not durably commit: roll the in-memory apply
            # back so memory, journal and the client's error response all
            # agree the write never happened (a retry is safe)
            hosted.session.apply(delta.undo)
            hosted.restore_undo_state(saved_undo)
            raise
        return "POST /sessions/{id}/apply", 200, document

    def _handle_undo(self, hosted: HostedSession, body: Any) -> VerbResult:
        if not isinstance(body, Mapping) or "token" not in body:
            raise BadRequest("undo body must be {\"token\": \"...\"}")
        token = body["token"]
        # peek, don't pop: a failed apply rolls the database back
        # (delta-engine atomicity), so the token must stay valid — and in
        # its original eviction slot — instead of burning on the attempt
        undo = hosted.peek_undo(token)
        saved_undo = hosted.undo_state()
        delta = hosted.session.apply(undo)
        hosted.consume_undo(token)
        document = self._delta_document(hosted, delta)
        try:
            hosted.persist_undo(token, document["undo_token"])
        except BaseException:
            # roll the replay back: the database reverts and the taken
            # token returns to its original eviction slot, still valid
            hosted.session.apply(delta.undo)
            hosted.restore_undo_state(saved_undo)
            raise
        return "POST /sessions/{id}/undo", 200, document

    @staticmethod
    def _handle_repair(hosted: HostedSession, body: Any) -> VerbResult:
        body = body or {}
        if not isinstance(body, Mapping):
            raise BadRequest("repair body must be a JSON object (or empty)")
        kwargs: Dict[str, Any] = {}
        if "max_passes" in body:
            kwargs["max_passes"] = int(body["max_passes"])
        if "limit" in body:
            kwargs["limit"] = int(body["limit"])
        adopt = bool(body.get("adopt", False))
        report = hosted.session.repair(
            strategy=body.get("strategy", "u"),
            adopt=adopt,
            **kwargs,
        )
        if adopt:
            # the instance the stored undo changesets were recorded
            # against is gone; replaying one on the repaired instance
            # would silently corrupt it
            hosted.clear_undo()
            # wholesale instance swap: no changeset to WAL — capture the
            # adopted state as a fresh snapshot instead
            hosted.persist_snapshot()
        return "POST /sessions/{id}/repair", 200, report.to_dict()

    @staticmethod
    def _handle_rules_write(
        hosted: HostedSession, method: str, body: Any
    ) -> VerbResult:
        from repro.rules_json import rules_from_list, rules_to_list

        if isinstance(body, Mapping):
            documents = body.get("rules")
        else:
            documents = body
        if not isinstance(documents, (list, tuple)):
            raise BadRequest(
                "rules body must be a rules list (or {\"rules\": [...]})"
            )
        session = hosted.session
        parsed = rules_from_list(documents, session.schema)
        previous = list(session.rules)
        if method == "PUT":
            session.replace_rules(parsed)
        else:
            session.add_rules(*parsed)
        try:
            hosted.persist_rules(
                rules_to_list(parsed), replace=method == "PUT"
            )
        except BaseException:
            # journal failure: put the previous rule set back so the
            # client's error response matches the session's state
            session.replace_rules(previous)
            raise
        return (
            f"{method} /sessions/{{id}}/rules",
            200,
            {"session": hosted.id, "rules": len(session.rules)},
        )


_STATUS_REASONS = {
    200: "OK",
    201: "Created",
    301: "Moved Permanently",
    400: "Bad Request",
    404: "Not Found",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def status_reason(status: int) -> str:
    """The reason phrase for a status line (shared by both transports)."""
    return _STATUS_REASONS.get(status, "Unknown")
