"""Crash-safe session durability: changeset WAL + snapshot recovery.

The server's warm sessions (PR 5) die with the process; this module makes
them survive it.  Each hosted session owns a directory under the server's
``--state-dir`` holding two kinds of files:

* **a changeset write-ahead log** (``wal-<gen>.log``) — every successful
  write verb appends one CRC-framed record (the canonical changeset /
  rules document plus its undo token id, framed by
  :func:`repro.registry.wal_record_to_bytes`) and fsyncs it *before* the
  HTTP response commits.  A crash at any byte boundary leaves at worst a
  torn final record, which :func:`repro.registry.wal_records_from_bytes`
  detects and recovery truncates;
* **periodic snapshots** (``snapshot-<gen>.json``) — the full session
  state (schema + rules + data documents through the registry codecs,
  plus the undo-token table) written atomically (tmp + rename) after
  ``snapshot_every`` WAL records, after which the previous generation's
  snapshot and WAL are retired.

Recovery rebuilds a session from the newest snapshot plus its WAL tail:
replaying a logged changeset through :meth:`Changeset.apply_to`
regenerates exactly the effective ops (and therefore the undo changeset)
the original request produced, so undo tokens survive restarts with their
ids, contents and LRU order intact.  Recovery is *lazy*: the manager
rehydrates a session on first touch, so a restart (or an eviction, which
becomes flush-then-drop) costs nothing until the session is asked for.

The fsync unit is one HTTP write verb, not one edit op — a 100-op
changeset is framed as a single record and hardened by a single fsync,
which is what keeps the apply-latency overhead small
(``benchmarks/bench_server_durability.py`` tracks it).
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple
from urllib.parse import quote, unquote

from repro.engine.delta import Changeset
from repro.errors import ReproError
from repro.registry import wal_record_to_bytes, wal_records_from_bytes
from repro.session import Session

__all__ = [
    "DEFAULT_SNAPSHOT_EVERY",
    "MAX_UNDO_TOKENS",
    "RecoveredSession",
    "SessionJournal",
    "SessionStore",
]

#: WAL records per generation before a snapshot retires the log
DEFAULT_SNAPSHOT_EVERY = 64

#: undo tokens remembered per session (oldest dropped first); lives here so
#: recovery enforces the same bound the live server does
MAX_UNDO_TOKENS = 32

_SNAPSHOT_FORMAT = 1


def _fsync_dir(path: Path) -> None:
    """Harden a directory entry (created/renamed file) — best effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _undo_token_ordinal(token: str) -> int:
    """The numeric suffix of an ``undo-<n>`` token (0 when unparseable)."""
    _, _, suffix = token.partition("-")
    try:
        return int(suffix)
    except ValueError:
        return 0


class RecoveredSession:
    """What :meth:`SessionStore.recover` hands back: the rebuilt session
    plus the server-side state that must survive with it."""

    __slots__ = ("session", "undo", "undo_counter", "wal_records")

    def __init__(
        self,
        session: Session,
        undo: "OrderedDict[str, Changeset]",
        undo_counter: int,
        wal_records: int,
    ) -> None:
        self.session = session
        self.undo = undo
        self.undo_counter = undo_counter
        self.wal_records = wal_records


class SessionJournal:
    """One session's durability handle: WAL appends + snapshot cycling.

    Not internally locked: every call happens under the owning
    :class:`~repro.server.HostedSession`'s lock (the same lock that
    serializes the write verbs the journal records).
    """

    def __init__(
        self, store: "SessionStore", session_id: str, directory: Path
    ) -> None:
        self.store = store
        self.session_id = session_id
        self.directory = directory
        #: snapshot generation currently on disk (-1: none yet)
        self.generation = -1
        #: WAL records appended since that snapshot
        self.wal_records = 0
        #: non-None: the WAL cannot take appends (an earlier append left
        #: bytes that could not be cut back out, or a snapshot failed with
        #: memory ahead of disk).  Cleared by the next successful
        #: snapshot, which the write verbs fall back to (see
        #: :meth:`HostedSession._persist_record`).
        self.blocked: Optional[str] = None
        self._wal_handle: Optional[Any] = None

    # -- paths -----------------------------------------------------------

    def _snapshot_path(self, generation: int) -> Path:
        return self.directory / f"snapshot-{generation:08d}.json"

    def _wal_path(self, generation: int) -> Path:
        return self.directory / f"wal-{generation:08d}.log"

    # -- WAL appends -----------------------------------------------------

    def _append(self, record: Mapping[str, Any]) -> None:
        """Frame, write and sync one record before the caller responds.

        Appends use ``fdatasync`` where the platform has it: the record
        bytes must be on disk before the response commits, but the file's
        metadata (mtime) can lag — recovery never reads it.
        """
        if self.blocked is not None:
            raise ReproError(f"session WAL suspended: {self.blocked}")
        if self._wal_handle is None:
            path = self._wal_path(self.generation)
            existed = path.exists()
            self._wal_handle = open(path, "ab")
            if not existed and self.store.fsync:
                # a brand-new WAL's *directory entry* needs its own fsync:
                # the record bytes are fdatasync'd below, but without this
                # the whole file can vanish in a crash even though its
                # records were hardened and the responses acknowledged
                _fsync_dir(self.directory)
        handle = self._wal_handle
        frame = wal_record_to_bytes(record)
        offset = handle.tell()
        try:
            handle.write(frame)
            handle.flush()
            if self.store.fsync:
                getattr(os, "fdatasync", os.fsync)(handle.fileno())
        except BaseException:
            # the record did not durably commit: cut any partial bytes
            # back out so the WAL agrees with the caller's rolled-back
            # in-memory state and later appends start frame-aligned
            try:
                handle.truncate(offset)
                handle.flush()
                if self.store.fsync:
                    os.fsync(handle.fileno())
            except OSError:
                # partial bytes may remain mid-file; appending after them
                # would corrupt the log, so suspend the WAL until a
                # snapshot opens a fresh generation
                self.blocked = (
                    "a WAL append failed and its partial bytes could not "
                    "be removed"
                )
                handle.close()
                self._wal_handle = None
            raise
        self.wal_records += 1
        self.store._count("wal_records_total")

    def log_apply(self, changeset_doc: Mapping[str, Any], token: str) -> None:
        """Record a successful ``/apply``: the changeset + its undo token."""
        self._append(
            {"kind": "apply", "changeset": dict(changeset_doc), "token": token}
        )

    def log_undo(self, taken: str, token: str) -> None:
        """Record a successful ``/undo``.

        Only the token ids are logged: replay pops ``taken`` from the
        undo table it is rebuilding (the changeset is already there) and
        stores the replay's own inverse under ``token`` — the same
        deterministic construction the live request used.
        """
        self._append({"kind": "undo", "taken": taken, "token": token})

    def log_rules(
        self, rules_docs: List[Dict[str, Any]], replace: bool
    ) -> None:
        """Record a rules PUT (replace) or POST (append) by its documents."""
        self._append(
            {"kind": "rules", "rules": list(rules_docs), "replace": replace}
        )

    # -- snapshots -------------------------------------------------------

    def write_snapshot(
        self,
        session: Session,
        undo_items: List[Tuple[str, Changeset]],
        undo_counter: int,
    ) -> None:
        """Capture the full session state and retire the old generation.

        The snapshot is written to a temp file, fsync'd, then renamed into
        place (atomic on POSIX) — recovery never sees a half-written
        snapshot.  Only after the rename lands are the previous
        generation's snapshot and WAL deleted.
        """
        document = {
            "format": _SNAPSHOT_FORMAT,
            "session": self.session_id,
            "executor": session.executor,
            "shards": session._shards,
            "schema": session.schema_document(),
            "rules": session.rules_documents(),
            "data": session.data_documents(),
            "undo": [
                [token, undo.to_dict()] for token, undo in undo_items
            ],
            "undo_counter": undo_counter,
        }
        next_generation = self.generation + 1
        target = self._snapshot_path(next_generation)
        tmp = target.with_suffix(".json.tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(
                    document, handle, separators=(",", ":"), default=str
                )
                handle.flush()
                if self.store.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp, target)
        except BaseException:
            # memory may now be ahead of disk (repair-adopt snapshots the
            # instance swap directly); suspend WAL appends — the next
            # write verb retries a full snapshot, which both captures that
            # write and reopens a fresh log
            self.blocked = "a snapshot failed; memory may be ahead of disk"
            raise
        self.blocked = None
        _fsync_dir(self.directory)
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None
        old_generation = self.generation
        self.generation = next_generation
        self.wal_records = 0
        if old_generation >= 0:
            self._wal_path(old_generation).unlink(missing_ok=True)
            self._snapshot_path(old_generation).unlink(missing_ok=True)
        session.mark_clean()
        self.store._count("snapshots_total")

    @property
    def needs_flush(self) -> bool:
        """True iff state accrued since the last snapshot (WAL tail)."""
        return self.wal_records > 0

    def status(self, session: Session) -> Dict[str, Any]:
        """The durability section of the session info document."""
        document = {
            "enabled": True,
            "generation": self.generation,
            "wal_records": self.wal_records,
            "snapshot_every": self.store.snapshot_every,
            "dirty": session.dirty,
        }
        if self.blocked is not None:
            document["blocked"] = self.blocked
        return document

    def close(self) -> None:
        if self._wal_handle is not None:
            self._wal_handle.close()
            self._wal_handle = None


class SessionStore:
    """The on-disk table of durable sessions under one ``--state-dir``.

    Layout: ``<state_dir>/sessions/<quoted session id>/`` with the
    snapshot/WAL generations described in the module docstring.  Session
    ids are percent-encoded for the filesystem, so any id the wire
    protocol accepts maps to a directory.
    """

    def __init__(
        self,
        root: Path,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        fsync: bool = True,
    ) -> None:
        if snapshot_every < 1:
            raise ReproError("snapshot_every must be >= 1")
        self.root = Path(root)
        self.snapshot_every = snapshot_every
        self.fsync = fsync
        self.sessions_dir = self.root / "sessions"
        self.sessions_dir.mkdir(parents=True, exist_ok=True)
        self._counter_lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "snapshots_total": 0,
            "snapshot_failures_total": 0,
            "wal_records_total": 0,
            "rehydrated_total": 0,
            "flushed_total": 0,
        }

    def _count(self, counter: str) -> None:
        with self._counter_lock:
            self.counters[counter] += 1

    def counters_snapshot(self) -> Dict[str, int]:
        with self._counter_lock:
            return dict(self.counters)

    # -- directory table -------------------------------------------------

    def _session_dir(self, session_id: str) -> Path:
        name = quote(session_id, safe="")
        if not name:
            raise ReproError("session id must be a non-empty string")
        if set(name) == {"."}:
            # quote() leaves '.' unencoded, so the ids '.' and '..' would
            # alias the sessions dir and the state root — and purge()
            # would rmtree the entire state dir.  Force-encode the dots
            # into an ordinary directory name; unquote() in session_ids()
            # still round-trips the id.
            name = name.replace(".", "%2E")
        return self.sessions_dir / name

    def exists(self, session_id: str) -> bool:
        return self._session_dir(session_id).is_dir()

    def session_ids(self) -> List[str]:
        """Every session with durable state, sorted by id."""
        return sorted(
            unquote(entry.name)
            for entry in self.sessions_dir.iterdir()
            if entry.is_dir()
        )

    def purge(self, session_id: str) -> None:
        """Drop a session's durable state (DELETE semantics)."""
        directory = self._session_dir(session_id)
        if directory.is_dir():
            shutil.rmtree(directory)
            _fsync_dir(self.sessions_dir)

    # -- lifecycle -------------------------------------------------------

    def create(self, session_id: str, session: Session) -> SessionJournal:
        """Open durable state for a fresh session: generation-0 snapshot."""
        directory = self._session_dir(session_id)
        directory.mkdir(parents=True, exist_ok=False)
        _fsync_dir(self.sessions_dir)
        journal = SessionJournal(self, session_id, directory)
        try:
            journal.write_snapshot(session, [], 0)
        except BaseException:
            # don't leave a snapshot-less directory behind: it would 409
            # future creates of this id yet be unrecoverable
            journal.close()
            shutil.rmtree(directory, ignore_errors=True)
            raise
        return journal

    def recover(
        self, session_id: str
    ) -> Tuple[SessionJournal, RecoveredSession]:
        """Rebuild a session from its newest snapshot plus the WAL tail.

        A torn final WAL record (crash mid-write) is truncated away; the
        journal comes back open on the recovered generation, ready to
        append.  Raises :class:`~repro.errors.ReproError` when no usable
        snapshot exists or the WAL names state the snapshot cannot
        explain (corruption beyond a torn tail).
        """
        from repro.relational.instance import DatabaseInstance
        from repro.rules_json import database_schema_from_dict, rules_from_list

        directory = self._session_dir(session_id)
        if not directory.is_dir():
            # purged (DELETE) between the existence check and recovery
            raise FileNotFoundError(str(directory))
        snapshot_paths = sorted(directory.glob("snapshot-*.json"), reverse=True)
        if not snapshot_paths:
            raise ReproError(
                f"session {session_id!r} has durable state under "
                f"{directory} but no snapshot"
            )
        # only the *newest* snapshot is recoverable: writing generation N
        # retired generation N-1's WAL, so falling back to an older
        # snapshot would silently rewind the session past acknowledged
        # writes.  Snapshots land via tmp + atomic rename, so a crash
        # never tears one — an unreadable newest snapshot is corruption
        # and must fail loudly.
        newest = snapshot_paths[0]
        try:
            with open(newest, encoding="utf-8") as handle:
                snapshot_doc = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise ReproError(
                f"session {session_id!r}: newest snapshot {newest.name} is "
                f"unreadable ({exc}); refusing to fall back to an older "
                "generation whose WAL was already retired"
            ) from exc
        if not isinstance(snapshot_doc, dict) or "schema" not in snapshot_doc:
            raise ReproError(
                f"session {session_id!r}: newest snapshot {newest.name} is "
                "not a session snapshot document"
            )
        generation = int(newest.stem.split("-")[1])

        db_schema = database_schema_from_dict(snapshot_doc["schema"])
        rules = rules_from_list(snapshot_doc.get("rules", []), db_schema)
        db = DatabaseInstance(db_schema)
        for rel_name, rows in (snapshot_doc.get("data") or {}).items():
            relation = db.relation(rel_name)
            for row in rows:
                relation.add(row)
        session = Session.from_instance(
            db,
            rules,
            executor=snapshot_doc.get("executor", "indexed"),
            shards=snapshot_doc.get("shards"),
        )
        undo: "OrderedDict[str, Changeset]" = OrderedDict(
            (token, Changeset.from_dict(undo_doc))
            for token, undo_doc in snapshot_doc.get("undo", [])
        )
        undo_counter = int(snapshot_doc.get("undo_counter", 0))

        journal = SessionJournal(self, session_id, directory)
        journal.generation = generation
        wal_path = journal._wal_path(generation)
        records: List[Dict[str, Any]] = []
        if wal_path.exists():
            data = wal_path.read_bytes()
            records, clean_length = wal_records_from_bytes(data)
            if clean_length < len(data):
                # torn tail: the crash cut a record short — drop it so the
                # next append starts at a clean frame boundary
                with open(wal_path, "r+b") as handle:
                    handle.truncate(clean_length)
                    handle.flush()
                    if self.fsync:
                        os.fsync(handle.fileno())

        for index, record in enumerate(records):
            try:
                self._replay(record, session, undo)
            except Exception as exc:
                raise ReproError(
                    f"session {session_id!r}: WAL record #{index} "
                    f"({record.get('kind')!r}) failed to replay: {exc}"
                ) from exc
            token = record.get("token")
            if isinstance(token, str):
                undo_counter = max(undo_counter, _undo_token_ordinal(token))
            while len(undo) > MAX_UNDO_TOKENS:
                undo.popitem(last=False)
        journal.wal_records = len(records)
        session.mark_clean()

        # retire generations the snapshot superseded but a crash left behind
        for stale in sorted(directory.glob("snapshot-*.json")):
            if int(stale.stem.split("-")[1]) < generation:
                stale.unlink(missing_ok=True)
        for stale in sorted(directory.glob("wal-*.log")):
            if int(stale.stem.split("-")[1]) < generation:
                stale.unlink(missing_ok=True)
        for leftover in sorted(directory.glob("*.json.tmp")):
            leftover.unlink(missing_ok=True)

        self._count("rehydrated_total")
        return journal, RecoveredSession(
            session, undo, undo_counter, len(records)
        )

    @staticmethod
    def _replay(
        record: Mapping[str, Any],
        session: Session,
        undo: "OrderedDict[str, Changeset]",
    ) -> None:
        """Re-apply one WAL record to the session being rebuilt.

        Changesets go through :meth:`Changeset.apply_to` directly (no
        delta engine: recovery does not need violation maintenance, and
        the engine builds lazily on the first post-recovery request);
        the inverse of the effective ops is byte-identical to the undo
        changeset the live request stored, because the live path
        (:meth:`DeltaEngine.apply`) derives it the same way.
        """
        from repro.rules_json import rules_from_list

        kind = record.get("kind")
        if kind == "apply":
            changeset = Changeset.from_dict(record["changeset"])
            effective = changeset.apply_to(session.database)
            undo[record["token"]] = Changeset.inverse_of(effective)
        elif kind == "undo":
            taken = undo.pop(record["taken"])
            effective = taken.apply_to(session.database)
            undo[record["token"]] = Changeset.inverse_of(effective)
        elif kind == "rules":
            parsed = rules_from_list(record.get("rules", []), session.schema)
            if record.get("replace", True):
                session.replace_rules(parsed)
            else:
                session.add_rules(*parsed)
        else:
            raise ReproError(f"unknown WAL record kind {kind!r}")
