"""The unified session facade: one API over detect / repair / discover / stream.

The paper is one coherent story — a single class of conditional
dependencies driving detection, repairing and consistent query answering —
and :class:`Session` is the one object that tells it: it owns a
:class:`~repro.relational.instance.DatabaseInstance`, a rule set drawn from
any class registered in :mod:`repro.registry`, and a lazily-constructed
delta engine, and exposes the whole lifecycle::

    session = Session.from_files("schema.json", "rules.json", "data.csv")
    report  = session.detect()                    # ViolationReport
    fixed   = session.repair(strategy="u")        # RepairReport
    rules   = session.discover(min_support=5)     # profiling
    delta   = session.apply(changeset)            # incremental maintenance
    stats   = session.stream(StreamConfig(...))   # batched edit workload
    session.save_rules("rules.json")              # registry round trip

``detect`` runs the indexed batch executor (PR 1); ``apply``/``stream``
ride the delta engine (PR 2), constructed on first use and kept warm across
calls.  The CLI (:mod:`repro.cli`), the examples and the benchmark drivers
all sit on this facade; the older free functions remain as thin shims.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.cfd.detect import DetectionReport, detect_violations
from repro.cfd.discovery import DiscoveredCFD, discover_cfds
from repro.cfd.model import CFD, fd_as_cfd
from repro.deps.base import Dependency, Violation
from repro.deps.fd import FD
from repro.engine.config import EXECUTORS, validate_executor, validate_shards
from repro.engine.delta import Changeset, DeltaEngine, ViolationDelta
from repro.errors import RepairError, ReproError, SchemaError
from repro.relational.csvio import dump_csv, load_csv
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import DatabaseSchema

if TYPE_CHECKING:
    from repro.engine.parallel import ParallelExecutor
    from repro.repair.models import CostModel
    from repro.workloads.stream import StreamConfig, StreamReport

__all__ = ["Session", "ViolationReport", "RepairReport"]


class ViolationReport(DetectionReport):
    """A detection report with a machine-readable rendering.

    Identical to :class:`~repro.cfd.detect.DetectionReport` (same violation
    objects, same summary) plus :meth:`to_dict` for ``--format json``
    pipelines and service responses.
    """

    @staticmethod
    def _violation_to_dict(violation: Violation) -> Dict[str, Any]:
        dep = violation.dependency
        return {
            "dependency": getattr(dep, "name", repr(dep)),
            "reason": violation.reason,
            "tuples": [
                {"relation": relation, "values": t.as_dict()}
                for relation, t in violation.tuples
            ],
        }

    def to_dict(self, include_violations: bool = True) -> Dict[str, Any]:
        """JSON-ready document: totals, per-dependency counts, witnesses.

        ``include_violations=False`` omits the per-violation witness list
        (the summary-only shape).
        """
        # Aggregate by display name: distinct rule objects can share one
        # (e.g. two CFDs on the same embedded FD with different tableaux).
        per_dependency: Dict[str, int] = {}
        for dep, vs in self.by_dependency().items():
            name = getattr(dep, "name", repr(dep))
            per_dependency[name] = per_dependency.get(name, 0) + len(vs)
        document: Dict[str, Any] = {
            "total": self.total,
            "single_tuple": len(self.single_tuple()),
            "pairs": len(self.pairs()),
            "tuples_involved": len(self.violating_tuples()),
            "per_dependency": per_dependency,
        }
        if include_violations:
            document["violations"] = [
                self._violation_to_dict(v) for v in self.violations
            ]
        return document


class RepairReport:
    """Outcome of :meth:`Session.repair`: the repaired instance plus stats.

    ``cost`` is the strategy's own metric — aggregate w·dis cell cost for
    U-repair, tuples deleted for X-repair, symmetric-difference size for
    S-repair.  ``residual`` is a full re-detection on the repaired instance
    against *all* session rules (so a U-repair that only consumes FDs/CFDs
    still reports inclusion violations it could not address).
    """

    def __init__(
        self,
        strategy: str,
        repaired: DatabaseInstance,
        cost: float,
        changed: int,
        resolved: bool,
        residual: ViolationReport,
        passes: Optional[int] = None,
        changes: Optional[Sequence[Any]] = None,
    ) -> None:
        self.strategy = strategy
        self.repaired = repaired
        self.cost = cost
        self.changed = changed  # cells (u) or tuples (x/s) edited
        self.resolved = resolved
        self.residual = residual
        self.passes = passes
        self.changes = list(changes) if changes is not None else None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready document (omits the repaired instance itself)."""
        return {
            "strategy": self.strategy,
            "cost": self.cost,
            "changed": self.changed,
            "resolved": self.resolved,
            "passes": self.passes,
            "residual_violations": self.residual.total,
        }

    def __repr__(self) -> str:
        return (
            f"RepairReport({self.strategy}-repair: {self.changed} changed, "
            f"cost={self.cost:.3f}, resolved={self.resolved}, "
            f"residual={self.residual.total})"
        )


def _load_data_files(
    db_schema: DatabaseSchema,
    data: Union[str, Path, Mapping[str, Union[str, Path]]],
) -> DatabaseInstance:
    """Build an instance from CSV path(s): one path for single-relation
    schemas, a {relation: path} mapping otherwise."""
    db = DatabaseInstance(db_schema)
    if isinstance(data, (str, Path)):
        names = db_schema.relation_names
        if len(names) != 1:
            raise SchemaError(
                f"schema has relations {list(names)}; pass data as a "
                "{relation: path} mapping (or relation=path on the CLI)"
            )
        data = {names[0]: data}
    for name, path in data.items():
        relation = db.relation(name)
        for t in load_csv(relation.schema, path):
            relation.add(t)
    return db


#: executor names accepted by Session(executor=...) and Session.detect —
#: re-exported from the shared config schema so Session kwargs, CLI flags
#: and wire fields agree on names *and* error text
_EXECUTORS = EXECUTORS


class Session:
    """One database instance + one rule set + the engines that serve them.

    ``executor`` selects the detection path — ``"indexed"`` (default, the
    PR-1 batch executor), ``"parallel"`` (the sharded executor of
    :mod:`repro.engine.parallel`) or ``"naive"`` (the per-dependency
    oracle scans).  ``shards`` sets the hash-shard count used by the
    parallel executor *and* by the session's delta engine; ``None``
    defers to the ``REPRO_DEFAULT_SHARDS`` environment override (1 when
    unset).  Every executor and shard count yields the same violation
    multiset — the differential corpus pins them together.
    """

    def __init__(
        self,
        db: DatabaseInstance,
        rules: Iterable[Dependency] = (),
        engine: Optional[DeltaEngine] = None,
        executor: str = "indexed",
        shards: Optional[int] = None,
    ) -> None:
        self._db = db
        self._rules: List[Dependency] = list(rules)
        self._executor = validate_executor(executor)
        self._shards = validate_shards(shards)
        if engine is not None and engine.database is not db:
            raise ReproError("engine was built over a different database instance")
        self._engine: Optional[DeltaEngine] = engine
        # warm ParallelExecutor, built on first use
        self._parallel: Optional["ParallelExecutor"] = None
        self._dirty = False  # mutated since the last mark_clean()

    # -- construction ----------------------------------------------------

    @classmethod
    def from_instance(
        cls,
        db: DatabaseInstance,
        rules: Iterable[Dependency] = (),
        engine: Optional[DeltaEngine] = None,
        executor: str = "indexed",
        shards: Optional[int] = None,
    ) -> "Session":
        """Wrap an in-memory database (and optionally a live delta engine)."""
        return cls(db, rules, engine=engine, executor=executor, shards=shards)

    @classmethod
    def from_files(
        cls,
        schema: Union[str, Path],
        rules: Union[str, Path, None],
        data: Union[str, Path, Mapping[str, Union[str, Path]]],
        executor: str = "indexed",
        shards: Optional[int] = None,
    ) -> "Session":
        """Load schema JSON + rules JSON + CSV data into a session.

        The schema document may declare one relation or a ``"relations"``
        list; ``data`` is a CSV path (single relation) or a
        ``{relation: path}`` mapping.  ``rules`` may be ``None`` (e.g. for
        discovery-only sessions).
        """
        from repro.rules_json import load_database_schema, load_rules

        db_schema = load_database_schema(schema)
        parsed = load_rules(rules, db_schema) if rules is not None else []
        return cls(
            _load_data_files(db_schema, data),
            parsed,
            executor=executor,
            shards=shards,
        )

    # -- state -----------------------------------------------------------

    @property
    def database(self) -> DatabaseInstance:
        """The live database instance the session owns."""
        return self._db

    @property
    def schema(self) -> DatabaseSchema:
        """The database schema."""
        return self._db.schema

    @property
    def rules(self) -> tuple:
        """The session's rule set (read-only view)."""
        return tuple(self._rules)

    def add_rules(self, *rules: Dependency) -> "Session":
        """Add rules; the delta engine is rebuilt on next use."""
        self._rules.extend(rules)
        self._engine = None
        self._dirty = True
        return self

    def replace_rules(self, rules: Iterable[Dependency]) -> "Session":
        """Swap the whole rule set; the delta engine is rebuilt on next use."""
        self._rules = list(rules)
        self._engine = None
        self._dirty = True
        return self

    @property
    def dirty(self) -> bool:
        """True iff the session mutated since the last :meth:`mark_clean`.

        This is the persistence seam: ``apply``/``stream``, rule-set edits
        and ``repair(adopt=True)`` set it; a caller that has durably
        captured the session's state (e.g. the server's snapshot writer)
        calls :meth:`mark_clean`.  The ``save_*`` methods deliberately do
        *not* clear it — saving one relation is not a full capture.
        """
        return self._dirty

    def mark_clean(self) -> None:
        """Declare the current state durably captured (see :attr:`dirty`)."""
        self._dirty = False

    def close(self) -> None:
        """Release engine resources: parallel worker processes and the warm
        delta engine state.

        This is the eviction hook the server layer calls — a closed session
        stays usable (engines lazily rebuild on the next call), it just
        holds no warm state until then.
        """
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None
        self._engine = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def shards(self) -> int:
        """The resolved shard count the session's engines run with."""
        from repro.engine.parallel import resolve_shards

        return resolve_shards(self._shards)

    @property
    def executor(self) -> str:
        """The configured detection executor name."""
        return self._executor

    def state_fingerprint(self) -> tuple:
        """A version fingerprint of everything a detect answer depends on.

        The same shape the parallel executor keys its warm caches on:
        (database identity, rule identities, per-relation versions).  Two
        calls returning equal fingerprints bracket a window with no
        observable mutation — relation versions are bumped on every
        mutation, rule-set edits swap the rules list, and repair-adopt
        swaps the database object.  The server's snapshot layer uses this
        to serve reads against cached response bytes without the session
        lock; callers comparing fingerprints must hold strong references
        to the session (id reuse after collection would alias).
        """
        return (
            id(self._db),
            tuple(id(rule) for rule in self._rules),
            tuple((rel.schema.name, rel.version) for rel in self._db),
        )

    @property
    def has_warm_engine(self) -> bool:
        """True iff the delta engine is built (warm maintained state)."""
        return self._engine is not None

    @property
    def warm_engine(self) -> Optional[DeltaEngine]:
        """The delta engine if already built, else ``None`` — unlike
        :attr:`engine` this never triggers a lazy build (introspection
        surfaces like the server's ``/metrics`` must not construct
        engine state on a read path)."""
        return self._engine

    @property
    def has_warm_parallel(self) -> bool:
        """True iff a warm parallel executor (and maybe its pool) is held."""
        return self._parallel is not None

    @property
    def engine(self) -> DeltaEngine:
        """The delta engine over the session's instance (built on first use)."""
        if self._engine is None:
            self._engine = DeltaEngine(self._db, self._rules, shards=self._shards)
        return self._engine

    # -- detection -------------------------------------------------------

    def detect(
        self,
        engine: bool = True,
        *,
        executor: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> ViolationReport:
        """Batch violation detection over the configured execution engine.

        Every executor reports the same violation multiset as the free
        function :func:`repro.cfd.detect.detect_violations` (the
        differential corpus pins them equal); the parallel executor
        additionally sorts violations canonically, so its report is
        byte-identical for every shard count.  ``executor``/``shards``
        override the session-level configuration for this call;
        ``engine=False`` keeps its historical meaning (the naive
        per-dependency loop).
        """
        shards = validate_shards(shards)
        chosen = (
            validate_executor(executor) if executor is not None else self._executor
        )
        if not engine:
            chosen = "naive"
        if shards is not None and chosen != "parallel":
            # Mirror the CLI: shards alone opts into the parallel engine;
            # an explicit non-parallel executor + shards is contradictory.
            if executor is None and engine:
                chosen = "parallel"
            else:
                raise ReproError(
                    f"shards= requires the parallel executor, got {chosen!r}"
                )
        if chosen == "parallel":
            from repro.engine.parallel import (
                ParallelExecutor,
                detect_violations_parallel,
                resolve_shards,
            )

            if shards is not None and resolve_shards(shards) != self.shards:
                # Per-call shard override: one-shot executor, no caching.
                report = detect_violations_parallel(
                    self._db, self._rules, shards=shards
                )
            else:
                # The warm path: shard buckets and the worker pool persist
                # across calls; the executor's own (db, rules, versions)
                # fingerprint rebuilds them when anything changed.
                if self._parallel is None:
                    self._parallel = ParallelExecutor(shards=self._shards)
                report = self._parallel.detect(self._db, self._rules)
        else:
            report = detect_violations(
                self._db, self._rules, engine=chosen == "indexed"
            )
        return ViolationReport(report.violations)

    def is_clean(self) -> bool:
        """True iff the instance currently satisfies every rule."""
        if self._engine is not None:
            return self._engine.is_clean()
        return self.detect().is_clean()

    # -- repair ----------------------------------------------------------

    def _value_rules(self) -> List[CFD]:
        return [
            rule if isinstance(rule, CFD) else fd_as_cfd(rule)
            for rule in self._rules
            if isinstance(rule, (CFD, FD))
        ]

    def repair(
        self,
        strategy: str = "u",
        *,
        max_passes: int = 25,
        cost_model: Optional["CostModel"] = None,
        limit: int = 100_000,
        adopt: bool = False,
    ) -> RepairReport:
        """Repair the instance under one of the paper's three models (§5.1).

        ``strategy`` selects the model: ``"u"`` — cost-based value
        modification over the FDs/CFDs in the rule set; ``"x"`` — greedy
        maximal consistent subset (tuple deletions); ``"s"`` — exact
        ⊆-minimal symmetric difference search (bounded by ``limit``), the
        lowest-cost repair found.  With ``adopt=True`` the session swaps to
        the repaired instance (and drops its engine state).
        """
        from repro.repair.srepair import all_s_repairs, symmetric_difference
        from repro.repair.urepair import repair_cfds
        from repro.repair.xrepair import greedy_x_repair

        passes: Optional[int] = None
        changes: Optional[Sequence[Any]] = None
        if strategy == "u":
            value_rules = self._value_rules()
            if not value_rules:
                raise RepairError(
                    "U-repair needs at least one FD or CFD in the rule set"
                )
            result = repair_cfds(
                self._db,
                value_rules,
                cost_model=cost_model,
                max_passes=max_passes,
                shards=self._shards,
            )
            repaired = result.repaired
            cost = result.cost
            changed = result.changed_cells()
            passes = result.passes
            changes = result.changes
        elif strategy == "x":
            repaired = greedy_x_repair(self._db, self._rules, shards=self._shards)
            changed = self._db.total_tuples() - repaired.total_tuples()
            cost = float(changed)
        elif strategy == "s":
            candidates = all_s_repairs(
                self._db, self._rules, limit=limit, shards=self._shards
            )
            if not candidates:
                raise RepairError("S-repair search found no consistent instance")
            diffed = [
                (symmetric_difference(self._db, c), c) for c in candidates
            ]
            diff, repaired = min(
                diffed, key=lambda pair: (len(pair[0]), sorted(map(repr, pair[0])))
            )
            changed = len(diff)
            cost = float(changed)
        else:
            raise RepairError(
                f"unknown repair strategy {strategy!r}; expected 'u', 'x' or 's'"
            )

        residual = ViolationReport(
            detect_violations(repaired, self._rules).violations
        )
        report = RepairReport(
            strategy,
            repaired,
            cost,
            changed,
            resolved=residual.is_clean(),
            residual=residual,
            passes=passes,
            changes=changes,
        )
        if adopt:
            self._db = repaired
            self._engine = None
            self._dirty = True
        return report

    def discover(
        self,
        relation: Optional[str] = None,
        max_lhs: int = 2,
        min_support: int = 3,
        rhs_attributes: Optional[Sequence[str]] = None,
    ) -> List[DiscoveredCFD]:
        """Profile CFDs from the session's data (CTANE/CFDMiner-style)."""
        name = relation or self._single_relation_name()
        return discover_cfds(
            self._db.relation(name),
            max_lhs=max_lhs,
            min_support=min_support,
            rhs_attributes=rhs_attributes,
        )

    # -- incremental maintenance -----------------------------------------

    def apply(self, changeset: Changeset) -> ViolationDelta:
        """Apply a batch of edits through the delta engine (PR 2 semantics:
        returns added/removed violations plus the undo changeset)."""
        delta = self.engine.apply(changeset)
        self._dirty = True
        return delta

    def stream(
        self,
        config: Optional["StreamConfig"] = None,
        *,
        batches: Optional[Iterable[Changeset]] = None,
        verify: bool = False,
    ) -> "StreamReport":
        """Feed an edit stream through the delta engine, batch by batch.

        ``batches`` may be any iterable of changesets; by default a seeded
        random stream (:func:`repro.workloads.stream.stream_edits`) under
        ``config`` is generated against the live instance.  With
        ``verify=True`` every batch is cross-checked against full indexed
        re-detection (ReproError on divergence).  Returns a
        :class:`~repro.workloads.stream.StreamReport`.
        """
        import time

        from repro.engine.delta import violation_multiset
        from repro.engine.executor import detect_violations_indexed
        from repro.workloads.stream import (
            BatchResult,
            StreamConfig,
            StreamReport,
            stream_edits,
        )

        if batches is None:
            batches = stream_edits(self._db, config or StreamConfig())
        engine = self.engine
        results: List[BatchResult] = []
        for index, batch in enumerate(batches):
            started = time.perf_counter()  # repro: allow[REP001]
            delta = engine.apply(batch)
            self._dirty = True
            # timings are opt-in diagnostics, excluded from the
            # byte-stable report surface
            elapsed = time.perf_counter() - started  # repro: allow[REP001]
            results.append(
                BatchResult(
                    index,
                    len(batch),
                    len(delta.added),
                    len(delta.removed),
                    delta.remaining,
                    elapsed,
                )
            )
            if verify:
                fresh = detect_violations_indexed(self._db, self._rules)
                maintained = violation_multiset(engine.violations())
                recomputed = violation_multiset(fresh.violations)
                if maintained != recomputed:
                    raise ReproError(
                        f"delta engine diverged from full re-detection at "
                        f"batch {index}: {len(maintained)} vs "
                        f"{len(recomputed)} violations"
                    )
        return StreamReport(results, verified=verify)

    # -- persistence -----------------------------------------------------

    def rules_documents(self) -> List[Dict[str, Any]]:
        """The rule set as registry documents (JSON-ready)."""
        from repro.rules_json import rules_to_list

        return rules_to_list(self._rules)

    def save_rules(self, path: Union[str, Path]) -> None:
        """Write the rule set as a rules JSON document."""
        Path(path).write_text(
            json.dumps(self.rules_documents(), indent=2, default=str) + "\n"
        )

    def schema_document(self) -> Dict[str, Any]:
        """The database schema as a schema JSON document."""
        from repro.rules_json import database_schema_to_dict, schema_to_dict

        names = self.schema.relation_names
        if len(names) == 1:
            return schema_to_dict(self.schema.relation(names[0]))
        return database_schema_to_dict(self.schema)

    def save_schema(self, path: Union[str, Path]) -> None:
        """Write the schema as a schema JSON document."""
        Path(path).write_text(
            json.dumps(self.schema_document(), indent=2, default=str) + "\n"
        )

    def save_data(
        self, path: Union[str, Path], relation: Optional[str] = None
    ) -> None:
        """Write one relation (default: the only one) as CSV."""
        name = relation or self._single_relation_name()
        dump_csv(self._db.relation(name), path)

    def data_documents(self) -> Dict[str, List[Dict[str, Any]]]:
        """Every relation's live rows as JSON-ready documents.

        ``{relation: [row mapping, ...]}`` in live insertion order — the
        same shape the server's session-creation endpoint accepts as
        inline ``data``, and what the durability layer snapshots.
        Rebuilding a relation by adding these rows in order reproduces
        the instance exactly (detection output is byte-identical).
        """
        return {
            rel.schema.name: [t.as_dict() for t in rel]
            for rel in self._db
        }

    # -- helpers ---------------------------------------------------------

    def _single_relation_name(self) -> str:
        names = self.schema.relation_names
        if len(names) != 1:
            raise SchemaError(
                f"database has relations {list(names)}; name one explicitly"
            )
        return names[0]

    def __repr__(self) -> str:
        engine = "warm" if self._engine is not None else "cold"
        return (
            f"Session({self._db!r}, {len(self._rules)} rules, "
            f"engine={engine})"
        )
