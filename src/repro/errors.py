"""Exception hierarchy for the :mod:`repro` library.

All library errors derive from :class:`ReproError` so that callers can catch
any failure originating in this package with a single ``except`` clause while
still being able to discriminate schema problems from analysis limits.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "DomainError",
    "DependencyError",
    "QueryError",
    "AnalysisBoundExceeded",
    "InconsistentDependenciesError",
    "RepairError",
]


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or an operation referenced an unknown attribute."""


class DomainError(ReproError):
    """A value does not belong to the domain of the attribute it was given to."""


class DependencyError(ReproError):
    """A dependency is syntactically malformed (arity mismatch, bad pattern...)."""


class QueryError(ReproError):
    """A relational-algebra or SPC query is malformed for the given schema."""


class AnalysisBoundExceeded(ReproError):
    """An exact decision procedure hit its configured search/chase bound.

    The analyses for CIND implication and for CFD+CIND interaction are
    EXPTIME-hard or undecidable (paper, Theorems 4.1-4.2), so the exact
    procedures in this library take an explicit bound and raise this error
    (or return an ``UNKNOWN`` verdict, depending on the API) when the bound
    is exhausted instead of silently guessing.
    """


class InconsistentDependenciesError(ReproError):
    """An operation that requires a consistent dependency set was given a dirty one."""


class RepairError(ReproError):
    """A repair operation could not produce a consistent instance."""
