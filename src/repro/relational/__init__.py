"""In-memory relational substrate: domains, schemas, tuples, instances,
relational algebra and SPC/SPCU query trees."""

from repro.relational.domains import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    BoolDomain,
    Domain,
    EnumDomain,
    FloatDomain,
    IntDomain,
    StringDomain,
)
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.tuples import Tuple

__all__ = [
    "Attribute",
    "BOOL",
    "BoolDomain",
    "DatabaseInstance",
    "DatabaseSchema",
    "Domain",
    "EnumDomain",
    "FLOAT",
    "FloatDomain",
    "INT",
    "IntDomain",
    "RelationInstance",
    "RelationSchema",
    "STRING",
    "StringDomain",
    "Tuple",
]
