"""Relation and database instances.

A :class:`RelationInstance` is a bag-free (set-semantics) collection of
:class:`~repro.relational.tuples.Tuple` preserving insertion order, which
keeps examples and error reports deterministic.  A
:class:`DatabaseInstance` maps relation names to relation instances and is
the object every dependency's ``holds_on`` / violation detector consumes.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.errors import SchemaError
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.tuples import Tuple

__all__ = ["RelationInstance", "DatabaseInstance"]

_MISSING = object()


class RelationInstance:
    """A finite set of tuples over one relation schema (insertion-ordered)."""

    def __init__(self, schema: RelationSchema, tuples: Iterable[Tuple | Mapping | Sequence] = ()):
        self.schema = schema
        self._tuples: Dict[Tuple, None] = {}
        self._version = 0
        self._indexes = None
        for t in tuples:
            self.add(t)

    def _coerce(self, t: Tuple | Mapping | Sequence) -> Tuple:
        if isinstance(t, Tuple):
            if t.schema.attribute_names != self.schema.attribute_names:
                raise SchemaError(
                    f"tuple over {t.schema.name} cannot enter instance of {self.schema.name}"
                )
            return t
        return Tuple(self.schema, t)

    def add(self, t: Tuple | Mapping | Sequence) -> Tuple:
        """Insert a tuple (idempotent under set semantics); return it."""
        coerced = self._coerce(t)
        if coerced not in self._tuples:
            self._tuples[coerced] = None
            self._version += 1
        return coerced

    def remove(self, t: Tuple) -> None:
        """Delete a tuple (KeyError if absent)."""
        del self._tuples[t]
        self._version += 1

    def discard(self, t: Tuple) -> None:
        """Delete a tuple if present."""
        if self._tuples.pop(t, _MISSING) is not _MISSING:
            self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter; bumped on every effective add/remove/discard.

        :class:`repro.engine.indexes.RelationIndexes` compares this against
        the version its indexes were built at to decide invalidation.
        """
        return self._version

    @property
    def indexes(self) -> "Any":
        """Lazily-built hash indexes over this instance (see repro.engine)."""
        if self._indexes is None:
            from repro.engine.indexes import RelationIndexes

            self._indexes = RelationIndexes(self)
        return self._indexes

    def __contains__(self, t: Tuple) -> bool:
        return t in self._tuples

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationInstance)
            and self.schema == other.schema
            and set(self._tuples) == set(other._tuples)
        )

    def tuples(self) -> List[Tuple]:
        """All tuples in insertion order (fresh list)."""
        return list(self._tuples)

    def copy(self) -> "RelationInstance":
        return RelationInstance(self.schema, self._tuples)

    def filter(self, predicate: Callable[[Tuple], bool]) -> "RelationInstance":
        """New instance with the tuples satisfying ``predicate``."""
        return RelationInstance(self.schema, (t for t in self._tuples if predicate(t)))

    def project_values(self, attributes: Sequence[str]) -> List[tuple]:
        """List of value tuples for the projection on ``attributes``."""
        self.schema.check_attributes(attributes)
        return [t[list(attributes)] for t in self._tuples]

    def active_domain(self, attribute: str) -> List[Any]:
        """Distinct values appearing in ``attribute``, in first-seen order."""
        seen: Dict[Any, None] = {}
        for t in self._tuples:
            seen.setdefault(t[attribute], None)
        return list(seen)

    def group_by(self, attributes: Sequence[str]) -> Dict[tuple, List[Tuple]]:
        """Partition tuples by their projection on ``attributes``."""
        groups: Dict[tuple, List[Tuple]] = {}
        for t in self._tuples:
            groups.setdefault(t[list(attributes)], []).append(t)
        return groups

    def to_rows(self) -> List[tuple]:
        """All tuples as plain value tuples (schema attribute order)."""
        return [t.values() for t in self._tuples]

    def pretty(self, max_rows: int | None = None) -> str:
        """ASCII table rendering (used by examples and error messages)."""
        headers = list(self.schema.attribute_names)
        rows = [[repr(v) for v in t.values()] for t in self._tuples]
        if max_rows is not None:
            rows = rows[:max_rows]
        widths = [len(h) for h in headers]
        for row in rows:
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RelationInstance({self.schema.name}, {len(self)} tuples)"


class DatabaseInstance:
    """A database: one relation instance per relation schema."""

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, RelationInstance | Iterable] | None = None,
    ):
        self.schema = schema
        self._relations: Dict[str, RelationInstance] = {}
        for rel_schema in schema:
            self._relations[rel_schema.name] = RelationInstance(rel_schema)
        if relations:
            for name, content in relations.items():
                target = self.relation(name)
                if isinstance(content, RelationInstance):
                    if content.schema != target.schema:
                        raise SchemaError(
                            f"instance for {name!r} has schema {content.schema!r}, "
                            f"expected {target.schema!r}"
                        )
                    self._relations[name] = content.copy()
                else:
                    for t in content:
                        target.add(t)

    def relation(self, name: str) -> RelationInstance:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"database has no relation {name!r}; relations are {list(self._relations)}"
            ) from None

    def __getitem__(self, name: str) -> RelationInstance:
        return self.relation(name)

    def __iter__(self) -> Iterator[RelationInstance]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def is_empty(self) -> bool:
        return self.total_tuples() == 0

    def copy(self) -> "DatabaseInstance":
        return DatabaseInstance(
            self.schema, {name: rel.copy() for name, rel in self._relations.items()}
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DatabaseInstance)
            and self.schema == other.schema
            and self._relations == other._relations
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}:{len(r)}" for n, r in self._relations.items())
        return f"DatabaseInstance({inner})"
