"""Relation and database instances.

A :class:`RelationInstance` is a bag-free (set-semantics) collection of
:class:`~repro.relational.tuples.Tuple` preserving insertion order, which
keeps examples and error reports deterministic.  A
:class:`DatabaseInstance` maps relation names to relation instances and is
the object every dependency's ``holds_on`` / violation detector consumes.

Two storage backends sit behind the same public surface:

* ``"columnar"`` (the default) — a dictionary-encoded
  :class:`~repro.relational.columnar.ColumnStore`: one code column per
  attribute, an alive map for O(1) deletes, lazy ``Tuple`` materialization
  at the violation-report boundary, and zero-copy views for the vectorized
  scan kernels in :mod:`repro.engine`;
* ``"object"`` — the legacy insertion-ordered dict of ``Tuple`` objects,
  kept for one release as a differential safety net (CI runs the tier-1
  suite once under ``REPRO_STORAGE=object``).

The backend is chosen per instance at construction time — explicitly via
``storage=`` or process-wide via the ``REPRO_STORAGE`` environment
variable — and is invisible to every consumer: iteration order, set
semantics, report byte-format and the index/version invalidation contract
are identical on both.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Sequence

from repro.errors import DomainError, SchemaError
from repro.relational.columnar import ColumnStore
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.tuples import Tuple

__all__ = ["RelationInstance", "DatabaseInstance", "STORAGE_ENV"]

_MISSING = object()

#: environment toggle for the default storage backend ("columnar"/"object")
STORAGE_ENV = "REPRO_STORAGE"


def _default_storage() -> str:
    mode = os.environ.get(STORAGE_ENV, "").strip().lower()
    return mode if mode in ("columnar", "object") else "columnar"


class RelationInstance:
    """A finite set of tuples over one relation schema (insertion-ordered)."""

    def __init__(
        self,
        schema: RelationSchema,
        tuples: Iterable[Tuple | Mapping | Sequence] = (),
        storage: str | None = None,
    ):
        self.schema = schema
        mode = storage or _default_storage()
        if mode not in ("columnar", "object"):
            raise ValueError(f"unknown storage backend {mode!r}")
        self._store: ColumnStore | None = (
            ColumnStore(schema) if mode == "columnar" else None
        )
        self._tuples: Dict[Tuple, None] = {}
        self._version = 0
        self._indexes = None
        for t in tuples:
            self.add(t)

    @property
    def storage(self) -> str:
        """The backend this instance runs on (``"columnar"``/``"object"``)."""
        return "object" if self._store is None else "columnar"

    @property
    def column_store(self) -> ColumnStore | None:
        """The encoded column store, or ``None`` in legacy object mode.

        Read-only by contract for everyone but this instance: the engine
        layers (indexes, kernels, parallel sharding) consume codes and
        columns from here but never mutate them.
        """
        return self._store

    def _coerce(self, t: Tuple | Mapping | Sequence) -> Tuple:
        if isinstance(t, Tuple):
            if t.schema.attribute_names != self.schema.attribute_names:
                raise SchemaError(
                    f"tuple over {t.schema.name} cannot enter instance of {self.schema.name}"
                )
            return t
        return Tuple(self.schema, t)

    def add(self, t: Tuple | Mapping | Sequence) -> Tuple:
        """Insert a tuple (idempotent under set semantics); return it."""
        store = self._store
        if store is None:
            coerced = self._coerce(t)
            if coerced not in self._tuples:
                self._tuples[coerced] = None
                self._version += 1
            return coerced
        if isinstance(t, Tuple):
            if t.schema.attribute_names != self.schema.attribute_names:
                raise SchemaError(
                    f"tuple over {t.schema.name} cannot enter instance of {self.schema.name}"
                )
            values = t.values()
            codes = store.probe(values)
            if codes is not None and store.find_row(codes) is not None:
                return t
            if codes is None:
                codes = store.intern_row(values)
            store.append_row(codes, t)
            self._version += 1
            return t
        if isinstance(t, Mapping):
            return self.add(Tuple(self.schema, t))
        values = tuple(t)
        if len(values) != len(self.schema):
            raise SchemaError(
                f"tuple for {self.schema.name} has {len(values)} values, "
                f"schema has {len(self.schema)} attributes"
            )
        codes = store.probe(values)
        if codes is not None:
            row = store.find_row(codes)
            if row is not None:
                # Duplicate insert: the encoded-row hash probe decided
                # membership without building a throwaway Tuple.  Domains
                # are still checked so a bad-typed duplicate (e.g. True
                # where an int column holds 1) fails exactly as before.
                for attr, value in zip(self.schema.attributes, values):
                    if not attr.domain.contains(value):
                        raise DomainError(
                            f"value {value!r} for {self.schema.name}.{attr.name} "
                            f"not in domain {attr.domain.name}"
                        )
                return store.tuple_at(row)
        coerced = Tuple(self.schema, values)
        if codes is None:
            codes = store.intern_row(values)
        store.append_row(codes, coerced)
        self._version += 1
        return coerced

    def extend_rows(self, rows: Iterable[Sequence], validate: bool = True) -> int:
        """Bulk-insert plain value rows; returns how many were new.

        The columnar loader validates each *distinct* value once per column
        at interning time instead of constructing (and hashing) a ``Tuple``
        per row — the bulk-load path for CSV ingestion, shard rebuilds and
        workload generators.
        """
        store = self._store
        if store is None:
            before = len(self._tuples)
            for row in rows:
                self.add(row)
            return len(self._tuples) - before
        width = len(self.schema)
        attributes = self.schema.attributes
        encode = store.encode
        decode = store.decode
        find_row = store.find_row
        added = 0
        for row in rows:
            values = tuple(row)
            if len(values) != width:
                raise SchemaError(
                    f"tuple for {self.schema.name} has {len(values)} values, "
                    f"schema has {width} attributes"
                )
            codes = []
            for mapping, rep, attr, value in zip(encode, decode, attributes, values):
                code = mapping.get(value)
                if code is None:
                    if validate and not attr.domain.contains(value):
                        raise DomainError(
                            f"value {value!r} for {self.schema.name}.{attr.name} "
                            f"not in domain {attr.domain.name}"
                        )
                    code = len(rep)
                    mapping[value] = code
                    rep.append(value)
                codes.append(code)
            key = tuple(codes)
            if find_row(key) is not None:
                continue
            store.append_row(key)
            added += 1
        if added:
            self._version += 1
        return added

    def _row_of(self, t: Tuple) -> int | None:
        """Row index of ``t`` in the column store, or ``None`` if absent."""
        store = self._store
        assert store is not None
        if not isinstance(t, Tuple) or t.schema.name != self.schema.name:
            return None
        codes = store.probe(t.values())
        if codes is None:
            return None
        return store.find_row(codes)

    def remove(self, t: Tuple) -> None:
        """Delete a tuple (KeyError if absent)."""
        store = self._store
        if store is None:
            del self._tuples[t]
            self._version += 1
            return
        row = self._row_of(t)
        if row is None:
            raise KeyError(t)
        codes = store.probe(t.values())
        assert codes is not None
        store.kill_row(codes, row)
        self._version += 1

    def discard(self, t: Tuple) -> None:
        """Delete a tuple if present."""
        store = self._store
        if store is None:
            if self._tuples.pop(t, _MISSING) is not _MISSING:
                self._version += 1
            return
        row = self._row_of(t)
        if row is not None:
            codes = store.probe(t.values())
            assert codes is not None
            store.kill_row(codes, row)
            self._version += 1

    @property
    def version(self) -> int:
        """Mutation counter; bumped on every effective add/remove/discard.

        :class:`repro.engine.indexes.RelationIndexes` compares this against
        the version its indexes were built at to decide invalidation.
        """
        return self._version

    @property
    def indexes(self) -> "Any":
        """Lazily-built hash indexes over this instance (see repro.engine)."""
        if self._indexes is None:
            from repro.engine.indexes import RelationIndexes

            self._indexes = RelationIndexes(self)
        return self._indexes

    def __contains__(self, t: Tuple) -> bool:
        if self._store is None:
            return t in self._tuples
        return self._row_of(t) is not None

    def __iter__(self) -> Iterator[Tuple]:
        if self._store is None:
            return iter(self._tuples)
        return self._store.iter_tuples()

    def __len__(self) -> int:
        if self._store is None:
            return len(self._tuples)
        return len(self._store)

    def _value_set(self) -> set:
        store = self._store
        if store is None:
            return {t.values() for t in self._tuples}
        return {store.values_at(row) for row in store.iter_live_rows()}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationInstance)
            and self.schema == other.schema
            and self._value_set() == other._value_set()
        )

    def tuples(self) -> List[Tuple]:
        """All tuples in insertion order (fresh list)."""
        if self._store is None:
            return list(self._tuples)
        return list(self._store.iter_tuples())

    def copy(self) -> "RelationInstance":
        """Independent instance with the same tuples and backend.

        Columnar instances copy code columns and dictionaries directly —
        O(n) small-int work with no re-hashing or re-validation.
        """
        store = self._store
        if store is None:
            return RelationInstance(self.schema, self._tuples, storage="object")
        clone = RelationInstance(self.schema, storage="columnar")
        clone._store = store.copy()
        clone._version = len(clone._store)
        return clone

    def filter(self, predicate: Callable[[Tuple], bool]) -> "RelationInstance":
        """New instance with the tuples satisfying ``predicate``."""
        return RelationInstance(
            self.schema, (t for t in self if predicate(t)), storage=self.storage
        )

    def project_values(self, attributes: Sequence[str]) -> List[tuple]:
        """List of value tuples for the projection on ``attributes``."""
        self.schema.check_attributes(attributes)
        store = self._store
        if store is None:
            return [t[list(attributes)] for t in self._tuples]
        positions = self.schema.projection_positions(attributes)
        columns = [store.columns[p] for p in positions]
        decode = [store.decode[p] for p in positions]
        return [
            tuple(rep[column[row]] for rep, column in zip(decode, columns))
            for row in store.iter_live_rows()
        ]

    def active_domain(self, attribute: str) -> List[Any]:
        """Distinct values appearing in ``attribute``, in first-seen order."""
        store = self._store
        if store is None:
            seen: Dict[Any, None] = {}
            for t in self._tuples:
                seen.setdefault(t[attribute], None)
            return list(seen)
        position = self.schema.index_of(attribute)
        column = store.columns[position]
        rep = store.decode[position]
        codes_seen: set = set()
        out: List[Any] = []
        for row in store.iter_live_rows():
            code = column[row]
            if code not in codes_seen:
                codes_seen.add(code)
                out.append(rep[code])
        return out

    def group_by(self, attributes: Sequence[str]) -> Dict[tuple, List[Tuple]]:
        """Partition tuples by their projection on ``attributes``."""
        groups: Dict[tuple, List[Tuple]] = {}
        names = list(attributes)
        for t in self:
            groups.setdefault(t[names], []).append(t)
        return groups

    def to_rows(self) -> List[tuple]:
        """All tuples as plain value tuples (schema attribute order)."""
        store = self._store
        if store is None:
            return [t.values() for t in self._tuples]
        return [store.values_at(row) for row in store.iter_live_rows()]

    def pretty(self, max_rows: int | None = None) -> str:
        """ASCII table rendering (used by examples and error messages)."""
        headers = list(self.schema.attribute_names)
        rows = [[repr(v) for v in values] for values in self.to_rows()]
        if max_rows is not None:
            rows = rows[:max_rows]
        widths = [len(h) for h in headers]
        for row in rows:
            widths = [max(w, len(c)) for w, c in zip(widths, row)]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines.extend(" | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in rows)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"RelationInstance({self.schema.name}, {len(self)} tuples)"


class DatabaseInstance:
    """A database: one relation instance per relation schema."""

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, RelationInstance | Iterable] | None = None,
    ):
        self.schema = schema
        self._relations: Dict[str, RelationInstance] = {}
        for rel_schema in schema:
            self._relations[rel_schema.name] = RelationInstance(rel_schema)
        if relations:
            for name, content in relations.items():
                target = self.relation(name)
                if isinstance(content, RelationInstance):
                    if content.schema != target.schema:
                        raise SchemaError(
                            f"instance for {name!r} has schema {content.schema!r}, "
                            f"expected {target.schema!r}"
                        )
                    self._relations[name] = content.copy()
                else:
                    for t in content:
                        target.add(t)

    def relation(self, name: str) -> RelationInstance:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"database has no relation {name!r}; relations are {list(self._relations)}"
            ) from None

    def __getitem__(self, name: str) -> RelationInstance:
        return self.relation(name)

    def __iter__(self) -> Iterator[RelationInstance]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(rel) for rel in self._relations.values())

    def is_empty(self) -> bool:
        return self.total_tuples() == 0

    def copy(self) -> "DatabaseInstance":
        return DatabaseInstance(
            self.schema, {name: rel.copy() for name, rel in self._relations.items()}
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DatabaseInstance)
            and self.schema == other.schema
            and self._relations == other._relations
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}:{len(r)}" for n, r in self._relations.items())
        return f"DatabaseInstance({inner})"
