"""Immutable tuples over a relation schema.

``Tuple`` is a value type: hashable, comparable, with projection ``t[X]`` as
in the paper's notation.  Values are validated against attribute domains at
construction time so that dirty *types* never enter the system — dirty
*values* (the paper's concern) of course do.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple as PyTuple

from repro.errors import DomainError, SchemaError
from repro.relational.schema import RelationSchema

__all__ = ["Tuple"]


class Tuple:
    """An immutable tuple conforming to a :class:`RelationSchema`."""

    __slots__ = ("schema", "_values", "_hash")

    def __init__(
        self,
        schema: RelationSchema,
        values: Mapping[str, Any] | Sequence[Any],
        validate: bool = True,
    ):
        self.schema = schema
        if isinstance(values, Mapping):
            missing = [a for a in schema.attribute_names if a not in values]
            if missing:
                raise SchemaError(f"tuple for {schema.name} missing attributes {missing}")
            extra = [k for k in values if k not in schema]
            if extra:
                raise SchemaError(f"tuple for {schema.name} has unknown attributes {extra}")
            ordered = tuple(values[a] for a in schema.attribute_names)
        else:
            ordered = tuple(values)
            if len(ordered) != len(schema):
                raise SchemaError(
                    f"tuple for {schema.name} has {len(ordered)} values, "
                    f"schema has {len(schema)} attributes"
                )
        if validate:
            for attr, value in zip(schema.attributes, ordered):
                if not attr.domain.contains(value):
                    raise DomainError(
                        f"value {value!r} for {schema.name}.{attr.name} "
                        f"not in domain {attr.domain.name}"
                    )
        self._values: PyTuple[Any, ...] = ordered
        # repro: allow[REP001] — cached __hash__ value; placement-only,
        # set/dict iteration over tuples is sorted wherever it reaches output
        self._hash = hash((schema.name, ordered))

    def __getitem__(self, attributes: str | Sequence[str]) -> Any:
        """Projection: ``t["A"]`` is a value, ``t[["A","B"]]`` a value tuple."""
        if isinstance(attributes, str):
            return self._values[self.schema.index_of(attributes)]
        values = self._values
        return tuple(
            values[p] for p in self.schema.projection_positions(attributes)
        )

    def values(self) -> PyTuple[Any, ...]:
        """All values in schema attribute order."""
        return self._values

    def as_dict(self) -> Dict[str, Any]:
        """Attribute-name → value mapping (a fresh dict)."""
        return dict(zip(self.schema.attribute_names, self._values))

    def replace(self, **changes: Any) -> "Tuple":
        """A copy of this tuple with the given attributes updated.

        Only the changed cells are validated against their domains — every
        other value was already validated when this tuple was built.  Cell
        updates are the hot path of the delta engine and the U-repair loop,
        so the copy is assembled positionally.
        """
        values = list(self._values)
        for attr, value in changes.items():
            try:
                position = self.schema.index_of(attr)
            except Exception:
                raise SchemaError(
                    f"relation {self.schema.name} has no attribute {attr!r}"
                ) from None
            domain = self.schema.attributes[position].domain
            if not domain.contains(value):
                raise DomainError(
                    f"value {value!r} for {self.schema.name}.{attr} "
                    f"not in domain {domain.name}"
                )
            values[position] = value
        return Tuple(self.schema, tuple(values), validate=False)

    def agrees_with(self, other: "Tuple", attributes: Sequence[str]) -> bool:
        """True iff both tuples have equal projections on ``attributes``."""
        return self[attributes] == other[list(attributes)]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tuple)
            and self.schema.name == other.schema.name
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{a}={v!r}" for a, v in zip(self.schema.attribute_names, self._values)
        )
        return f"{self.schema.name}({inner})"
