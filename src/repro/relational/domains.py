"""Typed attribute domains.

The paper (Section 2 and Example 4.1) is explicit that, unlike classical
dependency theory, the static analyses of conditional dependencies *must*
know whether an attribute ranges over a finite domain: a set of CFDs can be
unsatisfiable only by exhausting a finite domain (or by clashing constants).
We therefore model domains as first-class objects that can

* validate membership of a value,
* report whether they are finite, and if so enumerate their values,
* produce "fresh" values outside any given finite avoid-set when infinite
  (needed by the consistency/implication witnesses and by the chase).
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Any, FrozenSet, Iterable, Iterator

from repro.errors import DomainError

__all__ = [
    "Domain",
    "IntDomain",
    "FloatDomain",
    "StringDomain",
    "BoolDomain",
    "EnumDomain",
    "BOOL",
    "INT",
    "FLOAT",
    "STRING",
]


class Domain(ABC):
    """Abstract value domain of an attribute."""

    #: short human-readable name, e.g. ``"int"`` or ``"enum{a,b}"``
    name: str

    @abstractmethod
    def contains(self, value: Any) -> bool:
        """Return True iff ``value`` is a member of this domain."""

    @property
    @abstractmethod
    def is_finite(self) -> bool:
        """True iff the domain has finitely many values."""

    def values(self) -> Iterator[Any]:
        """Iterate over all values of a finite domain.

        Raises :class:`DomainError` for infinite domains.
        """
        raise DomainError(f"domain {self.name} is not finite; cannot enumerate")

    def size(self) -> int:
        """Number of values in a finite domain (DomainError if infinite)."""
        raise DomainError(f"domain {self.name} is not finite; has no size")

    @abstractmethod
    def fresh_values(self, avoid: Iterable[Any] = ()) -> Iterator[Any]:
        """Yield values of the domain not in ``avoid``.

        For infinite domains the iterator never ends; for finite domains it
        yields the (finitely many) remaining values.
        """

    def fresh_value(self, avoid: Iterable[Any] = ()) -> Any:
        """Return one value outside ``avoid`` or raise if none exists."""
        for value in self.fresh_values(avoid):
            return value
        raise DomainError(f"domain {self.name} exhausted; no value outside avoid set")

    def validate(self, value: Any) -> Any:
        """Return ``value`` if it belongs to the domain, else raise DomainError."""
        if not self.contains(value):
            raise DomainError(f"value {value!r} not in domain {self.name}")
        return value

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}({self.name})"

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.name == getattr(other, "name", None)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name))


class IntDomain(Domain):
    """All Python ints (a countably infinite domain)."""

    name = "int"

    def contains(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    @property
    def is_finite(self) -> bool:
        return False

    def fresh_values(self, avoid: Iterable[Any] = ()) -> Iterator[Any]:
        taken = set(avoid)
        for candidate in itertools.count():
            if candidate not in taken:
                yield candidate


class FloatDomain(Domain):
    """All Python floats (treated as an infinite domain)."""

    name = "float"

    def contains(self, value: Any) -> bool:
        return isinstance(value, (float, int)) and not isinstance(value, bool)

    @property
    def is_finite(self) -> bool:
        return False

    def fresh_values(self, avoid: Iterable[Any] = ()) -> Iterator[Any]:
        taken = set(avoid)
        for candidate in itertools.count():
            value = float(candidate)
            if value not in taken:
                yield value


class StringDomain(Domain):
    """All Python strings (infinite domain)."""

    name = "string"

    def contains(self, value: Any) -> bool:
        return isinstance(value, str)

    @property
    def is_finite(self) -> bool:
        return False

    def fresh_values(self, avoid: Iterable[Any] = ()) -> Iterator[Any]:
        taken = set(avoid)
        for index in itertools.count():
            candidate = f"v{index}"
            if candidate not in taken:
                yield candidate


class EnumDomain(Domain):
    """A finite domain given by an explicit set of values.

    Example 4.1 of the paper uses ``bool``; area codes or country codes in
    CFD pattern tableaux are naturally modelled as enum domains too.
    """

    def __init__(self, values: Iterable[Any], name: str | None = None):
        self._values: FrozenSet[Any] = frozenset(values)
        if not self._values:
            raise DomainError("EnumDomain requires at least one value")
        if name is None:
            rendered = ",".join(sorted(map(repr, self._values)))
            name = f"enum{{{rendered}}}"
        self.name = name

    def contains(self, value: Any) -> bool:
        return value in self._values

    @property
    def is_finite(self) -> bool:
        return True

    def values(self) -> Iterator[Any]:
        # Sort by repr so enumeration order is deterministic across runs.
        return iter(sorted(self._values, key=repr))

    def size(self) -> int:
        return len(self._values)

    def fresh_values(self, avoid: Iterable[Any] = ()) -> Iterator[Any]:
        taken = set(avoid)
        for value in self.values():
            if value not in taken:
                yield value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, EnumDomain) and self._values == other._values

    def __hash__(self) -> int:
        return hash(("EnumDomain", self._values))


class BoolDomain(EnumDomain):
    """The two-valued boolean domain of Example 4.1."""

    def __init__(self) -> None:
        super().__init__((True, False), name="bool")

    def contains(self, value: Any) -> bool:
        return isinstance(value, bool)


#: Shared singleton instances; domains are immutable so sharing is safe.
BOOL = BoolDomain()
INT = IntDomain()
FLOAT = FloatDomain()
STRING = StringDomain()
