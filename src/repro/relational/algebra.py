"""Relational-algebra operators over in-memory instances.

These implement set-semantics σ, π, ×, ∪, −, natural join and attribute
renaming over :class:`~repro.relational.instance.RelationInstance`.  They are
the substrate for SPC/SPCU views (dependency propagation, Section 4.1) and
for the relational-algebra fragments of consistent query answering
(Theorem 5.3).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import QueryError, SchemaError
from repro.relational.instance import RelationInstance
from repro.relational.predicates import Condition
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.tuples import Tuple

__all__ = [
    "select",
    "project",
    "product",
    "union",
    "difference",
    "intersection",
    "rename",
    "natural_join",
]


def select(instance: RelationInstance, condition: Condition) -> RelationInstance:
    """σ: tuples of ``instance`` satisfying ``condition``."""
    unknown = condition.attributes() - set(instance.schema.attribute_names)
    if unknown:
        raise QueryError(
            f"selection condition mentions unknown attributes {sorted(unknown)}"
        )
    return instance.filter(lambda t: condition.evaluate(t.as_dict()))


def project(
    instance: RelationInstance,
    attributes: Sequence[str],
    new_name: str | None = None,
) -> RelationInstance:
    """π: projection (duplicate-eliminating) onto ``attributes``."""
    schema = instance.schema.project(attributes, new_name)
    result = RelationInstance(schema)
    for t in instance:
        result.add(Tuple(schema, t[list(attributes)], validate=False))
    return result


def product(
    left: RelationInstance,
    right: RelationInstance,
    new_name: str | None = None,
) -> RelationInstance:
    """×: Cartesian product; attribute names must be disjoint (rename first)."""
    overlap = set(left.schema.attribute_names) & set(right.schema.attribute_names)
    if overlap:
        raise QueryError(
            f"product operands share attributes {sorted(overlap)}; rename first"
        )
    schema = RelationSchema(
        new_name or f"{left.schema.name}_x_{right.schema.name}",
        list(left.schema.attributes) + list(right.schema.attributes),
    )
    result = RelationInstance(schema)
    for lt in left:
        for rt in right:
            result.add(Tuple(schema, lt.values() + rt.values(), validate=False))
    return result


def _check_union_compatible(left: RelationInstance, right: RelationInstance) -> None:
    if left.schema.attribute_names != right.schema.attribute_names:
        raise QueryError(
            f"operands not union-compatible: {left.schema.attribute_names} "
            f"vs {right.schema.attribute_names}"
        )


def union(
    left: RelationInstance,
    right: RelationInstance,
    new_name: str | None = None,
) -> RelationInstance:
    """∪: set union of two union-compatible instances."""
    _check_union_compatible(left, right)
    schema = left.schema if new_name is None else left.schema.rename(new_name)
    result = RelationInstance(schema)
    for t in left:
        result.add(Tuple(schema, t.values(), validate=False))
    for t in right:
        result.add(Tuple(schema, t.values(), validate=False))
    return result


def difference(left: RelationInstance, right: RelationInstance) -> RelationInstance:
    """−: tuples of ``left`` not in ``right`` (union-compatible operands)."""
    _check_union_compatible(left, right)
    right_values = {t.values() for t in right}
    return left.filter(lambda t: t.values() not in right_values)


def intersection(left: RelationInstance, right: RelationInstance) -> RelationInstance:
    """∩: tuples in both operands (union-compatible)."""
    _check_union_compatible(left, right)
    right_values = {t.values() for t in right}
    return left.filter(lambda t: t.values() in right_values)


def rename(
    instance: RelationInstance,
    mapping: Mapping[str, str],
    new_name: str | None = None,
) -> RelationInstance:
    """ρ: rename attributes according to ``mapping`` (old → new)."""
    for old in mapping:
        instance.schema.attribute(old)
    new_attrs = []
    for attr in instance.schema.attributes:
        new_attrs.append(Attribute(mapping.get(attr.name, attr.name), attr.domain))
    try:
        schema = RelationSchema(new_name or instance.schema.name, new_attrs)
    except SchemaError as exc:
        raise QueryError(f"rename produced an invalid schema: {exc}") from exc
    result = RelationInstance(schema)
    for t in instance:
        result.add(Tuple(schema, t.values(), validate=False))
    return result


def natural_join(
    left: RelationInstance,
    right: RelationInstance,
    new_name: str | None = None,
) -> RelationInstance:
    """⋈: natural join on the shared attribute names."""
    shared = [a for a in left.schema.attribute_names if a in right.schema]
    right_only = [a for a in right.schema.attribute_names if a not in left.schema]
    schema = RelationSchema(
        new_name or f"{left.schema.name}_join_{right.schema.name}",
        list(left.schema.attributes)
        + [right.schema.attribute(a) for a in right_only],
    )
    index: dict[tuple, list[Tuple]] = {}
    for rt in right:
        index.setdefault(rt[shared], []).append(rt)
    result = RelationInstance(schema)
    for lt in left:
        for rt in index.get(lt[shared], []):
            result.add(
                Tuple(schema, lt.values() + rt[right_only], validate=False)
            )
    return result
