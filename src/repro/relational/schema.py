"""Relation and database schemas.

A :class:`RelationSchema` is an ordered list of named, typed attributes; a
:class:`DatabaseSchema` is a named collection of relation schemas.  Following
Section 2 of the paper, attribute domains are part of the schema because the
consistency analyses of conditional dependencies interact with finite domains.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.domains import Domain, STRING

__all__ = ["Attribute", "RelationSchema", "DatabaseSchema"]


class Attribute:
    """A named attribute with a domain."""

    __slots__ = ("name", "domain")

    def __init__(self, name: str, domain: Domain = STRING):
        if not name:
            raise SchemaError("attribute name must be non-empty")
        self.name = name
        self.domain = domain

    def __repr__(self) -> str:
        return f"Attribute({self.name}: {self.domain.name})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Attribute)
            and self.name == other.name
            and self.domain == other.domain
        )

    def __hash__(self) -> int:
        return hash((self.name, self.domain))


class RelationSchema:
    """An ordered, duplicate-free list of attributes with a relation name."""

    def __init__(self, name: str, attributes: Iterable[Attribute | Tuple[str, Domain] | str]):
        if not name:
            raise SchemaError("relation name must be non-empty")
        self.name = name
        attrs: list[Attribute] = []
        for spec in attributes:
            if isinstance(spec, Attribute):
                attrs.append(spec)
            elif isinstance(spec, str):
                attrs.append(Attribute(spec))
            else:
                attr_name, domain = spec
                attrs.append(Attribute(attr_name, domain))
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema {name}: {names}")
        if not attrs:
            raise SchemaError(f"schema {name} must have at least one attribute")
        self._attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._attribute_names: Tuple[str, ...] = tuple(names)
        self._by_name: Dict[str, Attribute] = {a.name: a for a in attrs}
        self._index: Dict[str, int] = {a.name: i for i, a in enumerate(attrs)}
        self._projections: Dict[Tuple[str, ...], Tuple[int, ...]] = {}

    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        return self._attributes

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        return self._attribute_names

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __contains__(self, attribute_name: str) -> bool:
        return attribute_name in self._by_name

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name (SchemaError if absent)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(
                f"relation {self.name} has no attribute {name!r}; "
                f"attributes are {list(self.attribute_names)}"
            ) from None

    def domain(self, name: str) -> Domain:
        """Domain of the named attribute."""
        return self.attribute(name).domain

    def index_of(self, name: str) -> int:
        """Position of the named attribute in tuple order."""
        self.attribute(name)
        return self._index[name]

    def projection_positions(self, names: Sequence[str]) -> Tuple[int, ...]:
        """Compiled value positions for a projection, cached per name list.

        ``t[["A", "B"]]`` and the repair probes project the same few
        attribute lists millions of times; like the ``attribute_names``
        tuple this resolves each list to positions exactly once per schema.
        """
        key = tuple(names)
        positions = self._projections.get(key)
        if positions is None:
            positions = tuple(self.index_of(n) for n in key)
            self._projections[key] = positions
        return positions

    def check_attributes(self, names: Sequence[str]) -> Tuple[str, ...]:
        """Validate that every name exists; return them as a tuple."""
        for name in names:
            self.attribute(name)
        return tuple(names)

    def project(self, names: Sequence[str], new_name: str | None = None) -> "RelationSchema":
        """Schema of the projection onto ``names`` (order as given)."""
        self.check_attributes(names)
        return RelationSchema(
            new_name or f"{self.name}_proj",
            [self._by_name[n] for n in names],
        )

    def rename(self, new_name: str) -> "RelationSchema":
        """Same attributes under a different relation name."""
        return RelationSchema(new_name, self._attributes)

    def has_finite_domain_attribute(self) -> bool:
        """True iff some attribute ranges over a finite domain.

        This is the schema property that separates the general (intractable)
        and special (quadratic) cases of CFD analyses in Theorems 4.1/4.3.
        """
        return any(a.domain.is_finite for a in self._attributes)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, RelationSchema)
            and self.name == other.name
            and self._attributes == other._attributes
        )

    def __hash__(self) -> int:
        return hash((self.name, self._attributes))

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}: {a.domain.name}" for a in self._attributes)
        return f"{self.name}({inner})"


class DatabaseSchema:
    """A collection of relation schemas addressed by relation name."""

    def __init__(self, relations: Iterable[RelationSchema]):
        self._relations: Dict[str, RelationSchema] = {}
        for rel in relations:
            if rel.name in self._relations:
                raise SchemaError(f"duplicate relation name {rel.name!r}")
            self._relations[rel.name] = rel

    @property
    def relation_names(self) -> Tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"database schema has no relation {name!r}; "
                f"relations are {list(self._relations)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DatabaseSchema) and self._relations == other._relations

    def __repr__(self) -> str:
        return f"DatabaseSchema({', '.join(self._relations)})"
