"""Loading and saving relation instances as CSV.

The generators in :mod:`repro.workloads` produce instances directly, but a
downstream user will want to run the detectors over their own files; this
module gives a minimal, dependency-free CSV bridge with per-attribute value
parsing driven by the schema's domains.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Callable, Iterable, TextIO

from repro.errors import SchemaError
from repro.relational.domains import BoolDomain, FloatDomain, IntDomain
from repro.relational.instance import RelationInstance
from repro.relational.schema import RelationSchema

__all__ = ["load_csv", "dump_csv", "read_rows", "write_rows"]


def _parser_for(domain) -> Callable[[str], Any]:
    if isinstance(domain, BoolDomain):
        return lambda s: s.strip().lower() in ("1", "true", "t", "yes")
    if isinstance(domain, IntDomain):
        return lambda s: int(s)
    if isinstance(domain, FloatDomain):
        return lambda s: float(s)
    return lambda s: s


def read_rows(schema: RelationSchema, rows: Iterable[Iterable[str]]) -> RelationInstance:
    """Build an instance from string rows, parsing per attribute domain.

    Rows stream through the bulk loader: on the columnar backend each
    *distinct* value is validated and interned once per column instead of
    constructing a ``Tuple`` per CSV line.
    """
    parsers = [_parser_for(a.domain) for a in schema.attributes]
    width = len(schema)

    def parsed() -> Iterable[tuple]:
        for row in rows:
            cells = list(row)
            if len(cells) != width:
                raise SchemaError(
                    f"row has {len(cells)} cells, schema {schema.name} has {width} attributes"
                )
            yield tuple(parse(cell) for parse, cell in zip(parsers, cells))

    instance = RelationInstance(schema)
    instance.extend_rows(parsed())
    return instance


def load_csv(
    schema: RelationSchema,
    path: str | Path | TextIO,
    has_header: bool = True,
) -> RelationInstance:
    """Load an instance from a CSV file whose columns follow the schema order."""
    if hasattr(path, "read"):
        return _load_from_handle(schema, path, has_header)
    with open(path, newline="") as handle:
        return _load_from_handle(schema, handle, has_header)


def _load_from_handle(schema: RelationSchema, handle: TextIO, has_header: bool) -> RelationInstance:
    reader = csv.reader(handle)
    if has_header:
        header = next(reader, None)
        if header is not None and tuple(header) != schema.attribute_names:
            raise SchemaError(
                f"CSV header {header} does not match schema attributes "
                f"{list(schema.attribute_names)}"
            )
    return read_rows(schema, reader)


def write_rows(instance: RelationInstance) -> list[list[str]]:
    """Render an instance as string rows (schema attribute order)."""
    return [[str(v) for v in t.values()] for t in instance]


def dump_csv(
    instance: RelationInstance,
    path: str | Path | TextIO,
    write_header: bool = True,
) -> None:
    """Write an instance to a CSV file."""
    if hasattr(path, "write"):
        _dump_to_handle(instance, path, write_header)
        return
    with open(path, "w", newline="") as handle:
        _dump_to_handle(instance, handle, write_header)


def _dump_to_handle(instance: RelationInstance, handle: TextIO, write_header: bool) -> None:
    writer = csv.writer(handle)
    if write_header:
        writer.writerow(instance.schema.attribute_names)
    writer.writerows(write_rows(instance))
