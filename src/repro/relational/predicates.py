"""Comparison predicates over tuples.

These are the built-in predicates (=, !=, <, >, <=, >=) used by selection
conditions in relational algebra, by denial constraints (paper Section 2.3)
and by eCFD set patterns.  A predicate term is either an attribute reference
or a constant; a :class:`Comparison` relates two terms; :class:`And`,
:class:`Or`, :class:`Not` combine conditions.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from typing import Any, Callable, FrozenSet, Iterable, Mapping, Sequence

from repro.errors import QueryError

__all__ = [
    "Term",
    "Attr",
    "Const",
    "Condition",
    "Comparison",
    "And",
    "Or",
    "Not",
    "InSet",
    "TrueCondition",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
]

_OPERATORS: Mapping[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Term(ABC):
    """A term in a comparison: attribute reference or constant."""

    @abstractmethod
    def evaluate(self, env: Mapping[str, Any]) -> Any:
        """Value of this term in the given attribute-name → value environment."""

    @abstractmethod
    def attributes(self) -> FrozenSet[str]:
        """Attribute names this term mentions."""


class Attr(Term):
    """Reference to an attribute (optionally qualified ``rel.attr``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        try:
            return env[self.name]
        except KeyError:
            raise QueryError(f"attribute {self.name!r} not bound in environment") from None

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Attr) and self.name == other.name

    def __hash__(self) -> int:
        return hash(("Attr", self.name))


class Const(Term):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return self.value

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


def _as_term(value: Any) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, str) and value.startswith("@"):
        # "@name" is shorthand for an attribute reference in helper builders.
        return Attr(value[1:])
    return Const(value)


class Condition(ABC):
    """A boolean condition over an attribute environment."""

    @abstractmethod
    def evaluate(self, env: Mapping[str, Any]) -> bool:
        """Truth value of the condition in the environment."""

    @abstractmethod
    def attributes(self) -> FrozenSet[str]:
        """All attribute names mentioned."""

    def __and__(self, other: "Condition") -> "Condition":
        return And([self, other])

    def __or__(self, other: "Condition") -> "Condition":
        return Or([self, other])

    def __invert__(self) -> "Condition":
        return Not(self)


class TrueCondition(Condition):
    """The always-true condition (empty selection)."""

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        return True

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return "TRUE"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TrueCondition)

    def __hash__(self) -> int:
        return hash("TrueCondition")


class Comparison(Condition):
    """``left op right`` with op one of = != < <= > >=."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: Any, op: str, right: Any):
        if op not in _OPERATORS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.left = _as_term(left)
        self.op = op
        self.right = _as_term(right)

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        return _OPERATORS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and (self.left, self.op, self.right) == (other.left, other.op, other.right)
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.left, self.op, self.right))


class InSet(Condition):
    """``attr ∈ {v1,...,vk}`` — the disjunction construct of eCFDs (§2.3)."""

    __slots__ = ("term", "values", "negated")

    def __init__(self, term: Any, values: Iterable[Any], negated: bool = False):
        self.term = _as_term(term)
        self.values = frozenset(values)
        self.negated = negated

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        inside = self.term.evaluate(env) in self.values
        return not inside if self.negated else inside

    def attributes(self) -> FrozenSet[str]:
        return self.term.attributes()

    def __repr__(self) -> str:
        symbol = "NOT IN" if self.negated else "IN"
        rendered = ", ".join(sorted(map(repr, self.values)))
        return f"({self.term!r} {symbol} {{{rendered}}})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InSet)
            and (self.term, self.values, self.negated)
            == (other.term, other.values, other.negated)
        )

    def __hash__(self) -> int:
        return hash(("InSet", self.term, self.values, self.negated))


class And(Condition):
    """Conjunction of conditions."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Condition]):
        self.parts = tuple(parts)

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        return all(p.evaluate(env) for p in self.parts)

    def attributes(self) -> FrozenSet[str]:
        return frozenset().union(*(p.attributes() for p in self.parts)) if self.parts else frozenset()

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.parts)) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, And) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("And", self.parts))


class Or(Condition):
    """Disjunction of conditions."""

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[Condition]):
        self.parts = tuple(parts)

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        return any(p.evaluate(env) for p in self.parts)

    def attributes(self) -> FrozenSet[str]:
        return frozenset().union(*(p.attributes() for p in self.parts)) if self.parts else frozenset()

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.parts)) + ")"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Or) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(("Or", self.parts))


class Not(Condition):
    """Negation of a condition."""

    __slots__ = ("part",)

    def __init__(self, part: Condition):
        self.part = part

    def evaluate(self, env: Mapping[str, Any]) -> bool:
        return not self.part.evaluate(env)

    def attributes(self) -> FrozenSet[str]:
        return self.part.attributes()

    def __repr__(self) -> str:
        return f"(NOT {self.part!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Not) and self.part == other.part

    def __hash__(self) -> int:
        return hash(("Not", self.part))


def eq(left: Any, right: Any) -> Comparison:
    """Shorthand for ``Comparison(left, "=", right)``."""
    return Comparison(left, "=", right)


def ne(left: Any, right: Any) -> Comparison:
    """Shorthand for ``!=``."""
    return Comparison(left, "!=", right)


def lt(left: Any, right: Any) -> Comparison:
    """Shorthand for ``<``."""
    return Comparison(left, "<", right)


def le(left: Any, right: Any) -> Comparison:
    """Shorthand for ``<=``."""
    return Comparison(left, "<=", right)


def gt(left: Any, right: Any) -> Comparison:
    """Shorthand for ``>``."""
    return Comparison(left, ">", right)


def ge(left: Any, right: Any) -> Comparison:
    """Shorthand for ``>=``."""
    return Comparison(left, ">=", right)
