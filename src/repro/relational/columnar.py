"""Dictionary-encoded columnar storage behind :class:`RelationInstance`.

The detection algorithms of the paper are near-linear in the data, but a
per-``Tuple`` object heap representation pays an interpreter-level constant
per tuple on every scan.  :class:`ColumnStore` keeps one column per
attribute, with every value interned to a small integer code through a
per-column dictionary:

* ``encode[i]`` maps a value to its code, ``decode[i]`` maps the code back
  to the first-seen representative.  Because the dictionaries are plain
  Python dicts, interning inherits dict-key equality — ``1 == 1.0 == True``
  share one code, exactly the congruence that set semantics and
  :func:`repro.engine.parallel.stable_shard` already use (the first-seen
  representative is the one set semantics would have kept anyway);
* ``columns[i]`` is a stdlib ``array('q')`` of codes, one slot per row —
  ``numpy`` (when present) views it zero-copy for the vectorized scan
  kernels in :mod:`repro.engine.kernels`;
* deletes flip a byte in the ``alive`` map and leave the row in place; the
  store compacts only when dead rows outnumber the live ones, so row
  indices are stable between rare compactions and delete is O(1);
* ``Tuple`` objects are materialized lazily — only when a row is actually
  reported (a violation witness) or iterated by a legacy consumer — and
  cached per row.

Row identity is the tuple of codes: an open-addressed hash ``table`` of
row indices (probed against the columns themselves) gives O(1)
set-semantics membership without constructing a ``Tuple`` — and without a
per-row key object, so the whole membership structure costs a couple of
machine words per row (code-tuple equality coincides with value-tuple
equality because the per-column dictionaries are equality-congruent).
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple as PyTuple

from repro.relational.schema import RelationSchema
from repro.relational.tuples import Tuple

__all__ = ["ColumnStore"]

#: compact only when the dead-row count exceeds this floor *and* the
#: live-row count — keeps compaction O(edits) amortized and row indices
#: stable for typical delete-light workloads
COMPACT_MIN_DEAD = 64

#: hash-table slot markers (row indices are always >= 0)
_EMPTY = -1
_TOMBSTONE = -2


class ColumnStore:
    """Encoded columns + alive map + lazy ``Tuple`` cache for one relation."""

    __slots__ = (
        "schema",
        "encode",
        "decode",
        "columns",
        "alive",
        "table",
        "mask",
        "used",
        "live",
        "cache",
        "dead",
    )

    def __init__(self, schema: RelationSchema):
        self.schema = schema
        width = len(schema)
        #: per column, value → code (dict equality ⇒ cross-type congruence)
        self.encode: List[Dict[Any, int]] = [{} for _ in range(width)]
        #: per column, code → first-seen representative value
        self.decode: List[List[Any]] = [[] for _ in range(width)]
        #: per column, one code per row (dead rows keep their codes)
        self.columns: List[array] = [array("q") for _ in range(width)]
        #: one byte per row: 1 = live, 0 = deleted
        self.alive = bytearray()
        #: open-addressed membership table: slots hold row indices (or the
        #: _EMPTY/_TOMBSTONE markers), keyed by ``hash(codes)`` and probed
        #: against the columns — no per-row key object
        self.table = array("q", [_EMPTY] * 8)
        self.mask = 7
        #: occupied slots (live + tombstones), drives table growth
        self.used = 0
        self.live = 0
        #: lazily materialized ``Tuple`` per row (None until first asked)
        self.cache: List[Optional[Tuple]] = []
        self.dead = 0

    def __len__(self) -> int:
        return self.live

    # -- membership table --------------------------------------------------

    def find_row(self, codes: PyTuple[int, ...]) -> Optional[int]:
        """Row index of the live row holding ``codes``, or ``None``."""
        table = self.table
        mask = self.mask
        columns = self.columns
        # repro: allow[REP001] — codes are int tuples; int hashing is
        # seed-independent, and probe order never reaches output anyway
        h = hash(codes)
        i = h & mask
        perturb = h & 0x7FFFFFFFFFFFFFFF
        while True:
            row = table[i]
            if row == _EMPTY:
                return None
            if row != _TOMBSTONE and all(
                column[row] == code for column, code in zip(columns, codes)
            ):
                return row
            perturb >>= 5
            i = (5 * i + perturb + 1) & mask

    def _insert_slot(self, codes: PyTuple[int, ...], row: int) -> None:
        """Claim a slot for ``row``; caller guarantees ``codes`` is absent."""
        if 3 * (self.used + 1) >= 2 * (self.mask + 1):
            self._rebuild_table()
        table = self.table
        mask = self.mask
        # repro: allow[REP001] — codes are int tuples; int hashing is
        # seed-independent, and probe order never reaches output anyway
        h = hash(codes)
        i = h & mask
        perturb = h & 0x7FFFFFFFFFFFFFFF
        while table[i] >= 0:
            perturb >>= 5
            i = (5 * i + perturb + 1) & mask
        if table[i] == _EMPTY:
            self.used += 1
        table[i] = row
        self.live += 1

    def _delete_slot(self, codes: PyTuple[int, ...], row: int) -> None:
        table = self.table
        mask = self.mask
        # repro: allow[REP001] — codes are int tuples; int hashing is
        # seed-independent, and probe order never reaches output anyway
        h = hash(codes)
        i = h & mask
        perturb = h & 0x7FFFFFFFFFFFFFFF
        while table[i] != row:
            perturb >>= 5
            i = (5 * i + perturb + 1) & mask
        table[i] = _TOMBSTONE
        self.live -= 1

    def _row_hash(self, row: int) -> int:
        # repro: allow[REP001] — int-tuple hash, seed-independent
        return hash(tuple(column[row] for column in self.columns))

    def _rebuild_table(self) -> None:
        """Fresh table sized for the live rows; tombstones evaporate."""
        capacity = 8
        while 3 * (self.live + 1) >= 2 * capacity:
            capacity <<= 1
        capacity <<= 1
        table = array("q", [_EMPTY] * capacity)
        mask = capacity - 1
        alive = self.alive
        for row in range(len(alive)):
            if not alive[row]:
                continue
            h = self._row_hash(row)
            i = h & mask
            perturb = h & 0x7FFFFFFFFFFFFFFF
            while table[i] != _EMPTY:
                perturb >>= 5
                i = (5 * i + perturb + 1) & mask
            table[i] = row
        self.table = table
        self.mask = mask
        self.used = self.live

    @property
    def n_rows(self) -> int:
        """Physical row count, including dead rows awaiting compaction."""
        return len(self.alive)

    # -- encoding ----------------------------------------------------------

    def probe(self, values: Sequence[Any]) -> Optional[PyTuple[int, ...]]:
        """Codes for ``values`` if every value is already interned.

        ``None`` means at least one value was never seen in its column, so
        the row is definitely absent — the duplicate-insert fast path needs
        no ``Tuple`` (and no value-tuple hash) to decide membership.
        """
        codes = []
        append = codes.append
        for mapping, value in zip(self.encode, values):
            code = mapping.get(value)
            if code is None:
                return None
            append(code)
        return tuple(codes)

    def intern_row(self, values: Sequence[Any]) -> PyTuple[int, ...]:
        """Codes for ``values``, interning any value not yet seen."""
        codes = []
        append = codes.append
        for mapping, rep, value in zip(self.encode, self.decode, values):
            code = mapping.get(value)
            if code is None:
                code = len(rep)
                mapping[value] = code
                rep.append(value)
            append(code)
        return tuple(codes)

    # -- row lifecycle -----------------------------------------------------

    def append_row(
        self, codes: PyTuple[int, ...], materialized: Optional[Tuple] = None
    ) -> int:
        """Append a live row for ``codes``; caller guarantees it is new."""
        row = len(self.alive)
        for column, code in zip(self.columns, codes):
            column.append(code)
        # Claim the table slot before the alive bit flips: a growth-driven
        # rebuild must only see the rows that were already present.
        self._insert_slot(codes, row)
        self.alive.append(1)
        self.cache.append(materialized)
        return row

    def kill_row(self, codes: PyTuple[int, ...], row: int) -> None:
        """Mark a live row dead (O(1)); compact when dead rows dominate."""
        self._delete_slot(codes, row)
        self.alive[row] = 0
        self.cache[row] = None
        self.dead += 1
        if self.dead > COMPACT_MIN_DEAD and self.dead > self.live:
            self._compact()

    def _compact(self) -> None:
        """Drop dead rows, renumbering the live ones in insertion order.

        Dictionaries never shrink — codes stay valid across compaction, so
        only row indices move (every cached index structure is invalidated
        by the owning instance's version bump that triggered the deletes).
        """
        alive = self.alive
        keep = [row for row in range(len(alive)) if alive[row]]
        self.columns = [
            array("q", (column[row] for row in keep)) for column in self.columns
        ]
        self.cache = [self.cache[row] for row in keep]
        self.alive = bytearray(b"\x01" * len(keep))
        self.dead = 0
        self._rebuild_table()

    # -- materialization ---------------------------------------------------

    def values_at(self, row: int) -> PyTuple[Any, ...]:
        """Decoded value tuple of a row (no ``Tuple`` object)."""
        return tuple(
            rep[column[row]] for rep, column in zip(self.decode, self.columns)
        )

    def tuple_at(self, row: int) -> Tuple:
        """The row as a :class:`Tuple`, materialized once and cached.

        Values were validated when first interned, so materialization skips
        domain checks — this is the violation-report boundary where encoded
        rows become user-visible objects.
        """
        t = self.cache[row]
        if t is None:
            t = Tuple(self.schema, self.values_at(row), validate=False)
            self.cache[row] = t
        return t

    def iter_tuples(self) -> Iterator[Tuple]:
        """Live rows as (lazily materialized) tuples, in insertion order."""
        alive = self.alive
        cache = self.cache
        for row in range(len(alive)):
            if alive[row]:
                t = cache[row]
                yield t if t is not None else self.tuple_at(row)

    def iter_live_rows(self) -> Iterator[int]:
        """Live row indices in insertion order."""
        alive = self.alive
        for row in range(len(alive)):
            if alive[row]:
                yield row

    # -- copying -----------------------------------------------------------

    def copy(self) -> "ColumnStore":
        """Independent store sharing only immutable values and tuples."""
        clone = ColumnStore.__new__(ColumnStore)
        clone.schema = self.schema
        clone.encode = [mapping.copy() for mapping in self.encode]
        clone.decode = [list(rep) for rep in self.decode]
        clone.columns = [array("q", column) for column in self.columns]
        clone.alive = bytearray(self.alive)
        clone.table = array("q", self.table)
        clone.mask = self.mask
        clone.used = self.used
        clone.live = self.live
        clone.cache = list(self.cache)
        clone.dead = self.dead
        return clone

    def __repr__(self) -> str:
        distinct = sum(len(rep) for rep in self.decode)
        return (
            f"ColumnStore({self.schema.name}, {self.live} live rows, "
            f"{self.dead} dead, {distinct} interned values)"
        )
