"""SPC/SPCU query trees (views).

The propagation analysis of Section 4.1 (Theorem 4.7) and the relational-
algebra fragments of Theorem 5.3 are phrased over queries built from
selection (S), projection (P), Cartesian product (C) and union (U).  This
module provides an explicit AST for such queries with

* ``output_schema(db_schema)`` — static schema computation, and
* ``evaluate(db)``             — evaluation over a database instance.

Difference is also provided (for the C(σ,×,−) fragments of Theorem 5.3) but
is *not* part of the SPCU fragment used by the propagation analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping, Sequence

from repro.errors import QueryError
from repro.relational import algebra
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.predicates import Condition
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema

__all__ = [
    "Query",
    "Base",
    "Select",
    "Project",
    "Product",
    "Union",
    "Difference",
    "Rename",
    "Extend",
]


class Query(ABC):
    """A node of an SPCU(-) query tree."""

    @abstractmethod
    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        """Schema of the query result."""

    @abstractmethod
    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        """Evaluate the query over a database instance."""

    @abstractmethod
    def operators(self) -> frozenset:
        """Set of operator letters used, drawn from {"S","P","C","U","-","E"}."""

    def uses_only(self, letters: str) -> bool:
        """True iff the query uses only the given operator letters."""
        return self.operators() <= set(letters)


class Base(Query):
    """Leaf: scan of a base relation."""

    def __init__(self, relation_name: str):
        self.relation_name = relation_name

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        return db_schema.relation(self.relation_name)

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        return db.relation(self.relation_name)

    def operators(self) -> frozenset:
        return frozenset()

    def __repr__(self) -> str:
        return f"Base({self.relation_name})"


class Select(Query):
    """σ_condition(child)."""

    def __init__(self, child: Query, condition: Condition):
        self.child = child
        self.condition = condition

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        schema = self.child.output_schema(db_schema)
        unknown = self.condition.attributes() - set(schema.attribute_names)
        if unknown:
            raise QueryError(f"selection mentions unknown attributes {sorted(unknown)}")
        return schema

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        return algebra.select(self.child.evaluate(db), self.condition)

    def operators(self) -> frozenset:
        return self.child.operators() | {"S"}

    def __repr__(self) -> str:
        return f"Select({self.child!r}, {self.condition!r})"


class Project(Query):
    """π_attributes(child)."""

    def __init__(self, child: Query, attributes: Sequence[str]):
        self.child = child
        self.attributes = tuple(attributes)

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        return self.child.output_schema(db_schema).project(self.attributes)

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        return algebra.project(self.child.evaluate(db), self.attributes)

    def operators(self) -> frozenset:
        return self.child.operators() | {"P"}

    def __repr__(self) -> str:
        return f"Project({self.child!r}, {list(self.attributes)})"


class Product(Query):
    """child_left × child_right (disjoint attribute names)."""

    def __init__(self, left: Query, right: Query):
        self.left = left
        self.right = right

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        ls = self.left.output_schema(db_schema)
        rs = self.right.output_schema(db_schema)
        overlap = set(ls.attribute_names) & set(rs.attribute_names)
        if overlap:
            raise QueryError(f"product operands share attributes {sorted(overlap)}")
        return RelationSchema(
            f"{ls.name}_x_{rs.name}", list(ls.attributes) + list(rs.attributes)
        )

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        return algebra.product(self.left.evaluate(db), self.right.evaluate(db))

    def operators(self) -> frozenset:
        return self.left.operators() | self.right.operators() | {"C"}

    def __repr__(self) -> str:
        return f"Product({self.left!r}, {self.right!r})"


class Union(Query):
    """child_left ∪ child_right (union-compatible)."""

    def __init__(self, left: Query, right: Query):
        self.left = left
        self.right = right

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        ls = self.left.output_schema(db_schema)
        rs = self.right.output_schema(db_schema)
        if ls.attribute_names != rs.attribute_names:
            raise QueryError(
                f"union operands not compatible: {ls.attribute_names} vs {rs.attribute_names}"
            )
        return ls

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        return algebra.union(self.left.evaluate(db), self.right.evaluate(db))

    def operators(self) -> frozenset:
        return self.left.operators() | self.right.operators() | {"U"}

    def __repr__(self) -> str:
        return f"Union({self.left!r}, {self.right!r})"


class Difference(Query):
    """child_left − child_right (outside SPCU; used by CQA fragments)."""

    def __init__(self, left: Query, right: Query):
        self.left = left
        self.right = right

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        ls = self.left.output_schema(db_schema)
        rs = self.right.output_schema(db_schema)
        if ls.attribute_names != rs.attribute_names:
            raise QueryError("difference operands not union-compatible")
        return ls

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        return algebra.difference(self.left.evaluate(db), self.right.evaluate(db))

    def operators(self) -> frozenset:
        return self.left.operators() | self.right.operators() | {"-"}

    def __repr__(self) -> str:
        return f"Difference({self.left!r}, {self.right!r})"


class Rename(Query):
    """ρ: rename attributes (old → new); schema-preserving otherwise."""

    def __init__(self, child: Query, mapping: Mapping[str, str], new_name: str | None = None):
        self.child = child
        self.mapping = dict(mapping)
        self.new_name = new_name

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        schema = self.child.output_schema(db_schema)
        attrs = [
            Attribute(self.mapping.get(a.name, a.name), a.domain)
            for a in schema.attributes
        ]
        return RelationSchema(self.new_name or schema.name, attrs)

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        return algebra.rename(self.child.evaluate(db), self.mapping, self.new_name)

    def operators(self) -> frozenset:
        return self.child.operators()

    def __repr__(self) -> str:
        return f"Rename({self.child!r}, {self.mapping})"


class Extend(Query):
    """Add a constant-valued attribute to every tuple.

    This is how an integration view tags each source with, e.g., its country
    code — exactly the construction of Example 4.2 where the view over the
    UK/US/Netherlands sources adds CC.  ``Extend`` is expressible as a product
    with a single-tuple constant relation, so it stays inside SPC ("E" is
    tracked separately for clarity but treated as "C" for fragment checks).
    """

    def __init__(self, child: Query, attribute: Attribute, value):
        self.child = child
        self.attribute = attribute
        self.value = attribute.domain.validate(value)

    def output_schema(self, db_schema: DatabaseSchema) -> RelationSchema:
        schema = self.child.output_schema(db_schema)
        if self.attribute.name in schema:
            raise QueryError(f"attribute {self.attribute.name!r} already present")
        return RelationSchema(
            schema.name, list(schema.attributes) + [self.attribute]
        )

    def evaluate(self, db: DatabaseInstance) -> RelationInstance:
        child = self.child.evaluate(db)
        schema = RelationSchema(
            child.schema.name, list(child.schema.attributes) + [self.attribute]
        )
        result = RelationInstance(schema)
        for t in child:
            result.add(t.values() + (self.value,))
        return result

    def operators(self) -> frozenset:
        return self.child.operators() | {"E"}

    def __repr__(self) -> str:
        return f"Extend({self.child!r}, {self.attribute.name}={self.value!r})"
