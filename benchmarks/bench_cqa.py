"""EXP-CQA — §5.2: PTIME rewriting vs exhaustive repair enumeration.

Validates the rewriting on a key-violating relation and shows the
crossover the complexity results predict: enumeration cost explodes with
the number of conflicts (2^k repairs) while the rewriting stays flat.
"""

import pytest

from benchmarks.conftest import print_table
from repro.cqa.certain import certain_answers
from repro.cqa.rewriting import certain_sp
from repro.deps.fd import FD
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.query import Base, Project
from repro.relational.schema import DatabaseSchema, RelationSchema


def _conflicted_db(n_groups, conflicted_groups):
    """n_groups key groups; the first `conflicted_groups` have 2 variants."""
    schema = RelationSchema("R", [("K", STRING), ("V", STRING)])
    rows = []
    for i in range(n_groups):
        rows.append((f"k{i}", f"v{i}"))
        if i < conflicted_groups:
            rows.append((f"k{i}", f"v{i}x"))
    return DatabaseInstance(DatabaseSchema([schema]), {"R": rows})


@pytest.mark.parametrize("conflicts", [2, 6, 10])
def test_enumeration_cost_grows(benchmark, conflicts):
    db = _conflicted_db(20, conflicts)
    fd = FD("R", ["K"], ["V"])
    query = Project(Base("R"), ["V"])
    answers = benchmark(certain_answers, db, [fd], query)
    assert len(answers) == 20 - conflicts
    benchmark.extra_info["conflicts"] = conflicts
    benchmark.extra_info["repairs"] = 2 ** conflicts


@pytest.mark.parametrize("conflicts", [2, 10, 50])
def test_rewriting_cost_flat(benchmark, conflicts):
    db = _conflicted_db(100, conflicts)
    answers = benchmark(certain_sp, db, "R", ["K"], ["V"])
    assert len(answers) == 100 - conflicts
    benchmark.extra_info["conflicts"] = conflicts


def test_rewriting_equals_enumeration(benchmark):
    rows = []
    for conflicts in (1, 4, 8):
        db = _conflicted_db(12, conflicts)
        fd = FD("R", ["K"], ["V"])
        reference = certain_answers(db, [fd], Project(Base("R"), ["V"]))
        rewritten = certain_sp(db, "R", ["K"], ["V"])
        assert rewritten == reference
        rows.append([conflicts, 2 ** conflicts, len(rewritten)])
    benchmark(lambda: certain_sp(_conflicted_db(12, 4), "R", ["K"], ["V"]))
    print_table(
        "EXP-CQA: rewriting == enumeration",
        ["conflicted groups", "#repairs", "certain answers"],
        rows,
    )
