"""TAB1 — Table 1: complexity and finite axiomatizability, empirically.

Complexity *classes* cannot be timed, so each row of Table 1 is
reproduced as (i) the decision procedure implementing it, exercised at
growing input sizes in the regime the row describes, and (ii) a
correctness assertion that the procedure returns the right verdict.
The shape to observe across sizes:

* FD implication — linear-time closure, flat growth;
* CFD consistency/implication without finite domains — polynomial
  (propagation / seeded search);
* CFD consistency with finite domains — exponential candidate search
  (kept tiny);
* CIND consistency — O(1); CIND implication — chase, whose work grows
  with the dependency chain (PSPACE/EXPTIME in general);
* eCFD consistency — NP search over set constants;
* CFDs + CINDs — undecidable; the bounded checker reports its verdict
  and the explored-node count.
"""

import pytest

from repro.cfd.consistency import find_witness_tuple, is_consistent
from repro.cfd.ecfd import ECFD, SetPattern, ecfd_is_consistent
from repro.cfd.implication import cfd_implies
from repro.cfd.model import CFD, UNNAMED
from repro.cind.implication import cind_implies, consistency_is_trivial
from repro.cind.interaction import Verdict, check_joint_consistency
from repro.cind.model import CIND
from repro.deps.fd import FD, implies
from repro.relational.domains import BOOL, STRING
from repro.relational.schema import DatabaseSchema, RelationSchema


def _chain_fds(n):
    return [FD("R", [f"A{i}"], [f"A{i+1}"]) for i in range(n)]


def _wide_schema(n, finite=0):
    attrs = [(f"A{i}", STRING) for i in range(n + 1 - finite)]
    attrs += [(f"F{i}", BOOL) for i in range(finite)]
    return RelationSchema("R", attrs)


@pytest.mark.parametrize("n", [20, 80, 320])
def test_row_fd_implication_linear(benchmark, n):
    """FD implication: O(n) closure."""
    fds = _chain_fds(n)
    target = FD("R", ["A0"], [f"A{n}"])
    result = benchmark(implies, fds, target)
    assert result
    benchmark.extra_info["n"] = n


@pytest.mark.parametrize("n", [5, 20, 60])
def test_row_cfd_consistency_no_finite_domain(benchmark, n):
    """CFD consistency without finite domains: quadratic propagation."""
    schema = _wide_schema(n)
    # a forcing chain: (A_i = c_i → A_{i+1} = c_{i+1}), seeded by an
    # unconditional head — consistent, every constant propagates
    cfds = [CFD("R", ["A0"], ["A1"], [{"A0": UNNAMED, "A1": "c1"}])]
    cfds += [
        CFD("R", [f"A{i}"], [f"A{i+1}"], [{f"A{i}": f"c{i}", f"A{i+1}": f"c{i+1}"}])
        for i in range(1, n)
    ]
    witness = benchmark(find_witness_tuple, schema, cfds)
    assert witness is not None
    assert witness["A1"] == "c1"
    benchmark.extra_info["n"] = n


@pytest.mark.parametrize("n", [2, 4, 6])
def test_row_cfd_consistency_finite_domains(benchmark, n):
    """CFD consistency with finite domains: exponential candidate search
    (NP-complete) — sizes kept small on purpose."""
    schema = _wide_schema(1, finite=n)
    # force each boolean F_i via a chain so the search must branch
    cfds = []
    for i in range(n - 1):
        cfds.append(
            CFD(
                "R", [f"F{i}"], [f"F{i+1}"],
                [{f"F{i}": True, f"F{i+1}": False},
                 {f"F{i}": False, f"F{i+1}": True}],
            )
        )
    result = benchmark(is_consistent, schema, cfds)
    assert result  # alternating assignment exists
    benchmark.extra_info["n_finite_attrs"] = n


@pytest.mark.parametrize("n", [3, 6, 9])
def test_row_cfd_implication(benchmark, n):
    """CFD implication (coNP in general): transitive chain targets."""
    schema = _wide_schema(n)
    cfds = [
        CFD(
            "R", [f"A{i}"], [f"A{i+1}"],
            [{f"A{i}": UNNAMED, f"A{i+1}": UNNAMED}],
        )
        for i in range(n)
    ]
    target = CFD("R", ["A0"], [f"A{n}"], [{"A0": UNNAMED, f"A{n}": UNNAMED}])
    result = benchmark(cfd_implies, schema, cfds, target)
    assert result
    benchmark.extra_info["n"] = n


def test_row_cind_consistency_constant(benchmark):
    """CIND consistency: O(1) — always satisfiable."""
    result = benchmark(consistency_is_trivial)
    assert result


@pytest.mark.parametrize("n", [4, 16, 48])
def test_row_cind_implication_chase(benchmark, n):
    """CIND implication: chase along an n-relation chain."""
    relations = [RelationSchema(f"R{i}", [("a", STRING), ("b", STRING)]) for i in range(n + 1)]
    schema = DatabaseSchema(relations)
    sigma = [CIND(f"R{i}", ["a"], f"R{i+1}", ["a"]) for i in range(n)]
    target = CIND("R0", ["a"], f"R{n}", ["a"])
    result = benchmark(cind_implies, schema, sigma, target)
    assert result
    benchmark.extra_info["chain_length"] = n


@pytest.mark.parametrize("n", [2, 4, 8])
def test_row_ecfd_consistency(benchmark, n):
    """eCFD consistency: NP search over the listed set constants."""
    schema = RelationSchema(
        "R", [(f"A{i}", STRING) for i in range(n + 1)]
    )
    ecfds = [
        ECFD(
            "R", [f"A{i}"], [f"A{i+1}"],
            {f"A{i}": SetPattern({f"x{i}", f"y{i}"}),
             f"A{i+1}": SetPattern({f"x{i+1}", f"y{i+1}"})},
        )
        for i in range(n)
    ]
    result = benchmark(ecfd_is_consistent, schema, ecfds)
    assert result
    benchmark.extra_info["n"] = n


def test_row_cfd_plus_cind_bounded(benchmark):
    """CFDs + CINDs: undecidable ⟹ bounded three-valued checker."""
    schema = DatabaseSchema(
        [
            RelationSchema("R", [("a", STRING), ("b", STRING)]),
            RelationSchema("S", [("c", STRING), ("d", STRING)]),
        ]
    )
    cfds = [
        CFD("S", ["c"], ["d"], [{"c": UNNAMED, "d": "x"}]),
        CFD("S", ["c"], ["d"], [{"c": UNNAMED, "d": "y"}]),
    ]
    cinds = [CIND("R", ["a"], "S", ["c"])]
    result = benchmark(
        check_joint_consistency, schema, cfds, cinds, "R"
    )
    assert result.verdict == Verdict.INCONSISTENT
    benchmark.extra_info["explored_nodes"] = result.explored
    benchmark.extra_info["verdict"] = result.verdict.value


def test_row_axiomatizability_summary(benchmark):
    """Finite axiomatizability column: exercised by the inference-system
    test modules; recorded here so the Table-1 bench run states the row."""
    from repro.cfd.inference import derive_cfd  # noqa: F401  (CFDs: yes)
    from repro.deps.armstrong import derive  # noqa: F401  (FDs: yes)
    from repro.md.inference import md_implies  # noqa: F401  (MDs: yes)

    # CFDs+CINDs: no finite axiomatization (undecidable implication); the
    # library accordingly exposes only the bounded checker for the pair.
    from repro.cind.interaction import check_joint_consistency  # noqa: F401

    benchmark(lambda: None)
