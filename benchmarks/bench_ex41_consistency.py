"""EX41 — Example 4.1: CFD consistency flips with the domain.

{ψ1, ψ2} is unsatisfiable over dom(A) = bool and satisfiable the moment A
ranges over an infinite domain — the interaction of pattern constants with
finite domains that separates Theorems 4.1 and 4.3.
"""

from benchmarks.conftest import print_table
from repro.cfd.consistency import find_witness_tuple, is_consistent
from repro.paper import example41_cfds, example41_schema


def test_ex41_bool_domain(benchmark):
    result = benchmark(
        is_consistent, example41_schema(True), example41_cfds(True)
    )
    assert result is False
    benchmark.extra_info["domain"] = "bool"
    benchmark.extra_info["consistent"] = result


def test_ex41_infinite_domain(benchmark):
    result = benchmark(
        is_consistent, example41_schema(False), example41_cfds(False)
    )
    assert result is True
    benchmark.extra_info["domain"] = "int"
    benchmark.extra_info["consistent"] = result


def test_ex41_witness_shape(benchmark):
    witness = benchmark(
        find_witness_tuple, example41_schema(False), example41_cfds(False)
    )
    # the witness avoids both pattern constants 1 and 0 on A
    assert witness["A"] not in (0, 1)
    print_table(
        "Example 4.1: consistency of {ψ1, ψ2}",
        ["dom(A)", "consistent"],
        [["bool", False], ["int (infinite)", True]],
    )
