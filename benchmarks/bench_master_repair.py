"""EXP-MASTER — §5.1 Remark: repairing based on master data.

"The cost metric ... does not provide any guidance for where one should
draw new values from.  A more reasonable way is to conduct repairing
based on master data (reference data) ... this involves object
identification ... matching dependencies and relative candidate keys may
help us conduct data repairing and object identification in a uniform
dependency-based framework."

Ablation: CFD-only heuristic repair vs MD-matched master-data repair
(with the clean generator output standing in as the reference data).
The shape: CFD repair restores only the errors whose consistent value is
*pinned* (constant patterns); master repair restores everything its
matching rule can identify.
"""

import pytest

from benchmarks.conftest import print_table
from repro.md.model import RelativeKey
from repro.md.similarity import EQ
from repro.repair.master import repair_with_master_data
from repro.repair.urepair import repair_cfds
from repro.workloads.customer import CustomerConfig, generate_customers


def _restored_fraction(workload, repaired_relation):
    repaired = {t["phn"]: t for t in repaired_relation}
    clean = workload.clean_db.relation("customer").tuples()
    restored = sum(
        1
        for e in workload.errors
        if repaired[clean[e.row_index]["phn"]][e.attribute] == e.clean
    )
    return restored / len(workload.errors) if workload.errors else 1.0


def _matching_rule():
    """Identify a dirty customer with its master record by (CC, AC, phn) —
    the phone key the generator never corrupts."""
    return RelativeKey(
        "customer", "customer",
        [("CC", "CC"), ("AC", "AC"), ("phn", "phn")],
        [EQ, EQ, EQ],
        ["name", "street", "city", "zip"],
        ["name", "street", "city", "zip"],
        name="phone-key",
    )


def test_cfd_only_repair(benchmark):
    workload = generate_customers(
        CustomerConfig(n_tuples=600, error_rate=0.05, seed=47)
    )
    result = benchmark(repair_cfds, workload.db, workload.cfds())
    fraction = _restored_fraction(workload, result.repaired.relation("customer"))
    benchmark.extra_info["restored_fraction"] = round(fraction, 3)
    assert result.resolved


def test_master_data_repair(benchmark):
    workload = generate_customers(
        CustomerConfig(n_tuples=600, error_rate=0.05, seed=47)
    )
    master = workload.clean_db.relation("customer")
    correspondence = {a: a for a in ("name", "street", "city", "zip")}
    result = benchmark(
        repair_with_master_data,
        workload.db.relation("customer"),
        master,
        [_matching_rule()],
        correspondence,
    )
    fraction = _restored_fraction(workload, result.repaired)
    benchmark.extra_info["restored_fraction"] = round(fraction, 3)
    benchmark.extra_info["matched"] = result.matched
    assert fraction == 1.0  # every identified tuple gets the trusted values


def test_master_vs_cfd_series(benchmark):
    workload = generate_customers(
        CustomerConfig(n_tuples=600, error_rate=0.05, seed=47)
    )
    cfd_result = repair_cfds(workload.db, workload.cfds())
    master = workload.clean_db.relation("customer")
    correspondence = {a: a for a in ("name", "street", "city", "zip")}
    master_result = benchmark(
        lambda: repair_with_master_data(
            workload.db.relation("customer"),
            master,
            [_matching_rule()],
            correspondence,
        )
    )
    rows = [
        [
            "CFD heuristic (no reference data)",
            round(
                _restored_fraction(
                    workload, cfd_result.repaired.relation("customer")
                ),
                3,
            ),
        ],
        [
            "MD-matched master data",
            round(_restored_fraction(workload, master_result.repaired), 3),
        ],
    ]
    print_table(
        "EXP-MASTER: fraction of injected errors restored to ground truth",
        ["strategy", "restored"],
        rows,
    )
    assert rows[1][1] > rows[0][1]
