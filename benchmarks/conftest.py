"""Benchmark fixtures and a tiny table printer.

Every benchmark regenerates one artifact of the paper (figure, table, or
quoted experimental claim); qualitative assertions pin the *shape* of the
result (who wins, where crossovers fall) and ``benchmark.extra_info``
records the measured series so `--benchmark-json` output carries them.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render a small ASCII table to stdout (visible with pytest -s)."""
    rendered = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]
    print(f"\n== {title} ==")
    print(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    print("-+-".join("-" * w for w in widths))
    for row in rendered:
        print(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
