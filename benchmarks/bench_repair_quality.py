"""EXP-REPAIR — §5.1: cost-based U-repair ([16]/[28]-style heuristic).

Repairs dirty customer data against the CFD rules, reporting aggregate
cost, edited cells, and the fraction of injected errors whose cell ends up
restored to the clean value.  The shape: city errors (pinned by CFD
constants) are fully recovered; repair time scales near-linearly.
"""

import pytest

from benchmarks.conftest import print_table
from repro.cfd.detect import detect_violations
from repro.repair.urepair import repair_cfds
from repro.workloads.customer import CustomerConfig, generate_customers


def _restored_fraction(workload, result):
    repaired = {t["phn"]: t for t in result.repaired.relation("customer")}
    clean = workload.clean_db.relation("customer").tuples()
    restored = 0
    for error in workload.errors:
        clean_tuple = clean[error.row_index]
        if repaired[clean_tuple["phn"]][error.attribute] == error.clean:
            restored += 1
    return restored / len(workload.errors) if workload.errors else 1.0


@pytest.mark.parametrize("n_tuples", [400, 1600])
def test_repair_scaling(benchmark, n_tuples):
    workload = generate_customers(
        CustomerConfig(n_tuples=n_tuples, error_rate=0.04, seed=31)
    )
    cfds = workload.cfds()
    result = benchmark(repair_cfds, workload.db, cfds)
    assert result.resolved
    assert detect_violations(result.repaired, cfds).is_clean()
    benchmark.extra_info["n_tuples"] = n_tuples
    benchmark.extra_info["cost"] = round(result.cost, 2)
    benchmark.extra_info["changed_cells"] = result.changed_cells()


def test_city_errors_fully_recovered(benchmark):
    """Errors against constant patterns have a unique consistent fix."""
    workload = generate_customers(
        CustomerConfig(n_tuples=800, error_rate=0.05, seed=31)
    )
    result = benchmark(repair_cfds, workload.db, workload.cfds())
    repaired = {t["phn"]: t for t in result.repaired.relation("customer")}
    clean = workload.clean_db.relation("customer").tuples()
    city_errors = [e for e in workload.errors if e.attribute == "city"]
    assert city_errors
    recovered = sum(
        1
        for e in city_errors
        if repaired[clean[e.row_index]["phn"]]["city"] == e.clean
    )
    assert recovered == len(city_errors)


def test_repair_quality_series(benchmark):
    rows = []
    for rate in (0.02, 0.05):
        workload = generate_customers(
            CustomerConfig(n_tuples=800, error_rate=rate, seed=31)
        )
        result = repair_cfds(workload.db, workload.cfds())
        rows.append(
            [
                f"{rate:.0%}",
                len(workload.errors),
                result.changed_cells(),
                round(result.cost, 2),
                round(_restored_fraction(workload, result), 3),
                result.resolved,
            ]
        )
    benchmark(lambda: None)
    print_table(
        "EXP-REPAIR: heuristic CFD repair",
        ["error rate", "injected", "cells edited", "cost", "restored", "clean"],
        rows,
    )
    for row in rows:
        assert row[5] is True  # always reaches consistency
