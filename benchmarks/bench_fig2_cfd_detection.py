"""FIG2 — Figure 2: per-CFD satisfaction pattern of D0 and SQL generation.

D0 ⊨ ϕ3, D0 ⊭ ϕ1, D0 ⊭ ϕ2 — regenerated per dependency, plus the
two-query SQL detection of [36] executed on sqlite.
"""

import sqlite3

import pytest

from benchmarks.conftest import print_table
from repro.cfd.sqlgen import violation_sql
from repro.paper import fig1_instance, fig2_cfds


@pytest.mark.parametrize("name", ["phi1", "phi2", "phi3"])
def test_fig2_per_cfd(benchmark, name):
    db = fig1_instance()
    cfd = fig2_cfds()[name]
    violations = benchmark(lambda: list(cfd.violations(db)))
    expected = {"phi1": 1, "phi2": 3, "phi3": 0}[name]
    assert len(violations) == expected
    benchmark.extra_info["violations"] = len(violations)


def test_fig2_sql_detection(benchmark):
    """The SQL pair of [36] on sqlite agrees with the in-memory detector."""
    conn = sqlite3.connect(":memory:")
    conn.execute(
        "CREATE TABLE customer (CC INT, AC INT, phn INT, name TEXT, "
        "street TEXT, city TEXT, zip TEXT)"
    )
    for t in fig1_instance().relation("customer"):
        conn.execute("INSERT INTO customer VALUES (?,?,?,?,?,?,?)", t.values())
    cfds = fig2_cfds()

    def run_all():
        outcome = {}
        for name, cfd in cfds.items():
            q1, q2 = violation_sql(cfd)
            outcome[name] = bool(conn.execute(q1).fetchall()) or bool(
                conn.execute(q2).fetchall()
            )
        return outcome

    outcome = benchmark(run_all)
    assert outcome == {"phi1": True, "phi2": True, "phi3": False}
    print_table(
        "Figure 2: D0 ⊨ ϕ? (via generated SQL)",
        ["CFD", "violated"],
        sorted(outcome.items()),
    )
    conn.close()
