"""SERVER DURABILITY — apply latency with the changeset WAL on vs. off.

``repro serve --state-dir`` hardens every write verb with a CRC-framed,
fsync'd WAL append before the HTTP response commits.  The fsync unit is
one *request*, not one op: a whole changeset is framed as a single record
and hardened by a single fsync, so the durability tax amortizes over the
changeset's ops.  This driver measures that over real HTTP round-trips:

* **plain** — a session on a server without ``--state-dir``;
* **durable** — the same session on a durable server (WAL + snapshots at
  the default cadence under a scratch state dir), same edit stream.

The headline series times batched applies (``BATCH_OPS`` ops per
changeset — the shape the delta engine's batch path is built for) with
the snapshot cadence set above the request count, so the number isolates
the per-request WAL tax (frame + write + fsync); the acceptance target
is a durable apply latency within ``1.3x`` of plain at 10k tuples.  Each
entry also records, as informational fields: the same stream at the
*default* snapshot cadence (``overhead_with_snapshots`` — the amortized
cost of periodically re-serializing the full instance, which an operator
tunes with ``--snapshot-every`` against recovery-replay length), the
single-op worst case (``single_op_overhead``, nothing to amortize the
fsync over), and a cold recovery timing (crash + restart + first
detect).  The regression gate tracks ``overhead_headroom = 1.3 /
overhead`` (>=1 means the target holds) because the gate only compares
ratios that start at 1x or better.

    python benchmarks/bench_server_durability.py [--out BENCH_durability.json]
    python benchmarks/bench_server_durability.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.client import ServerClient
from repro.registry import encode
from repro.rules_json import database_schema_to_dict
from repro.server import make_server
from repro.workloads.customer import CustomerConfig, generate_customers

SIZES = [1_000, 10_000]
TARGET_OVERHEAD = 1.3
TARGET_TUPLES = 10_000
#: ops per timed changeset — matches the repo's canonical edit-batch size
#: (``repro stream --batch-size`` default)
BATCH_OPS = 100


def _workload(n_tuples: int) -> Dict[str, Any]:
    workload = generate_customers(CustomerConfig(n_tuples=n_tuples, seed=11))
    relation = workload.db.relation("customer")
    rows = [t.as_dict() for t in relation]
    return {
        "schema": database_schema_to_dict(workload.db.schema),
        "rules": [encode(rule) for rule in workload.cfds()],
        "rows": rows,
        "template": dict(rows[0]),
    }


def _batch_rows(template: Dict[str, Any], round_no: int, batch: int):
    rows = []
    for i in range(batch):
        row = dict(template)
        row["name"] = f"bench-durability-{round_no}-{i}"
        rows.append(row)
    return rows


def _time_applies(
    client: ServerClient,
    session_id: str,
    template: Dict[str, Any],
    requests: int,
    batch: int,
) -> float:
    """Seconds per apply request; each request inserts (even rounds) or
    deletes (odd rounds) ``batch`` synthetic rows — net-zero on the data,
    so every timed apply sees the same instance size."""
    for op, round_no in (("insert", -1), ("delete", -1)):  # warm the engine
        client.apply(session_id, {"ops": [
            {"op": op, "relation": "customer", "row": row}
            for row in _batch_rows(template, round_no, batch)
        ]})
    started = time.perf_counter()
    for request_no in range(requests):
        op = "insert" if request_no % 2 == 0 else "delete"
        rows = _batch_rows(template, request_no // 2, batch)
        client.apply(session_id, {"ops": [
            {"op": op, "relation": "customer", "row": row} for row in rows
        ]})
    return (time.perf_counter() - started) / requests


def _bench_size(
    documents: Dict[str, Any], n_tuples: int, requests: int
) -> Dict[str, Any]:
    create_kwargs = dict(
        schema=documents["schema"],
        rules=documents["rules"],
        data={"customer": documents["rows"]},
        session_id="bench",
    )
    template = documents["template"]

    plain_server = make_server(port=0)
    plain_server.start_background()
    try:
        client = ServerClient(base_url=plain_server.base_url, timeout=300.0)
        client.wait_ready()
        client.create_session(**create_kwargs)
        plain_per_apply = _time_applies(client, "bench", template, requests, BATCH_OPS)
        plain_single_op = _time_applies(client, "bench", template, requests, 1)
    finally:
        plain_server.shutdown()

    # -- durable, WAL tax isolated: no snapshot fires inside the clock ---
    state_dir = Path(tempfile.mkdtemp(prefix="repro-bench-durability-"))
    try:
        wal_only_every = 100 * requests  # far above the stream length
        durable_server = make_server(
            port=0, state_dir=state_dir, snapshot_every=wal_only_every
        )
        durable_server.start_background()
        client = ServerClient(base_url=durable_server.base_url, timeout=300.0)
        client.wait_ready()
        client.create_session(**create_kwargs)
        durable_per_apply = _time_applies(
            client, "bench", template, requests, BATCH_OPS
        )
        durable_single_op = _time_applies(client, "bench", template, requests, 1)
        # crash (no graceful flush) and time cold recovery on a restart
        ThreadingHTTPServer.shutdown(durable_server)
        durable_server.server_close()
        restarted = make_server(port=0, state_dir=state_dir)
        restarted.start_background()
        try:
            client = ServerClient(base_url=restarted.base_url, timeout=300.0)
            client.wait_ready()
            started = time.perf_counter()
            client.detect("bench", include_violations=False)
            recovery_seconds = time.perf_counter() - started
        finally:
            restarted.shutdown()
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)

    # -- durable at the default snapshot cadence (informational) ---------
    state_dir = Path(tempfile.mkdtemp(prefix="repro-bench-durability-"))
    try:
        cadence_server = make_server(port=0, state_dir=state_dir)
        cadence_server.start_background()
        client = ServerClient(base_url=cadence_server.base_url, timeout=300.0)
        client.wait_ready()
        client.create_session(**create_kwargs)
        cadence_per_apply = _time_applies(
            client, "bench", template, requests, BATCH_OPS
        )
        cadence_server.shutdown()
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)

    overhead = durable_per_apply / plain_per_apply
    return {
        "n_tuples": n_tuples,
        "n_rules": len(documents["rules"]),
        "requests": requests,
        "batch_ops": BATCH_OPS,
        "plain_seconds_per_apply": plain_per_apply,
        "durable_seconds_per_apply": durable_per_apply,
        "overhead": overhead,
        "overhead_headroom": TARGET_OVERHEAD / overhead,
        "overhead_with_snapshots": cadence_per_apply / plain_per_apply,
        "single_op_overhead": durable_single_op / plain_single_op,
        "recovery_seconds": recovery_seconds,
    }


def run(sizes: List[int], requests: int) -> Dict[str, Any]:
    series = [
        _bench_size(_workload(n_tuples), n_tuples, requests)
        for n_tuples in sizes
    ]
    at_target = [
        entry["overhead"]
        for entry in series
        if entry["n_tuples"] >= TARGET_TUPLES
    ]
    return {
        "benchmark": "server_durability",
        "workload": (
            f"customer {BATCH_OPS}-op changeset applies over HTTP "
            "(WAL on vs off)"
        ),
        "sizes": sizes,
        "target_overhead": TARGET_OVERHEAD,
        "target_tuples": TARGET_TUPLES,
        "series": series,
        "max_overhead": max(entry["overhead"] for entry in series),
        "overhead_at_target": min(at_target) if at_target else None,
        "meets_target": bool(at_target) and min(at_target) <= TARGET_OVERHEAD,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_durability.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small size / few requests; no overhead gate (CI smoke)",
    )
    parser.add_argument("--requests", type=int, default=None)
    args = parser.parse_args(argv)

    # the smoke size matches the committed baseline's smallest size so the
    # CI regression gate compares like scales
    sizes = [1_000] if args.smoke else SIZES
    requests = args.requests or (20 if args.smoke else 120)

    document = run(sizes, requests)
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    for entry in document["series"]:
        print(
            f"{entry['n_tuples']:>7} tuples: "
            f"plain {entry['plain_seconds_per_apply'] * 1e3:7.2f} ms/apply, "
            f"durable {entry['durable_seconds_per_apply'] * 1e3:7.2f} ms/apply, "
            f"overhead {entry['overhead']:5.2f}x "
            f"(default-cadence {entry['overhead_with_snapshots']:.2f}x, "
            f"single-op {entry['single_op_overhead']:.2f}x, "
            f"recovery {entry['recovery_seconds'] * 1e3:.1f} ms)"
        )
    print(
        f"max overhead {document['max_overhead']:.2f}x "
        f"(target <={TARGET_OVERHEAD}x at {TARGET_TUPLES} tuples: "
        f"{'met' if document['meets_target'] else 'not gated' if args.smoke else 'MISSED'})"
    )
    if not args.smoke and not document["meets_target"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
