"""EX43 — Example 4.3 / Theorem 4.8: PTIME MD implication and RCK
derivation.

Σ1 ⊨m rck_i for i ∈ [1, 3], decided by the polynomial fact-saturation
procedure; the derivation bench then enumerates all RCKs up to length 3.
"""

import pytest

from benchmarks.conftest import print_table
from repro.md.inference import md_implies
from repro.md.model import MD
from repro.md.rck import derive_rcks
from repro.md.similarity import EQ
from repro.paper import YB, YC, example31_mds, example32_rcks


def test_ex43_implication(benchmark):
    sigma = list(example31_mds().values())
    rcks = example32_rcks()

    def run():
        return {name: md_implies(sigma, rck) for name, rck in rcks.items()}

    outcome = benchmark(run)
    assert outcome == {"rck1": True, "rck2": True, "rck3": True}
    print_table(
        "Example 4.3: Σ1 ⊨m rck_i",
        ["relative key", "implied"],
        sorted(outcome.items()),
    )


def test_ex43_rck_derivation(benchmark):
    sigma = list(example31_mds().values())
    rcks = benchmark(
        lambda: derive_rcks(sigma, list(YC), list(YB), max_length=3)
    )
    assert len(rcks) >= 3
    benchmark.extra_info["derived_rcks"] = len(rcks)


@pytest.mark.parametrize("n_mds", [4, 16, 64])
def test_md_implication_scales_polynomially(benchmark, n_mds):
    """Theorem 4.8: the implication check stays polynomial as Σ grows."""
    from repro.md.model import MATCH

    # a ⇋-chain: each conclusion feeds the next premise
    sigma = [MD("R", "S", [("a0", "b0", EQ)], ["a1"], ["b1"])]
    sigma += [
        MD("R", "S", [(f"a{i}", f"b{i}", MATCH)], [f"a{i+1}"], [f"b{i+1}"])
        for i in range(1, n_mds)
    ]
    target = MD("R", "S", [("a0", "b0", EQ)], [f"a{n_mds}"], [f"b{n_mds}"])
    result = benchmark(md_implies, sigma, target)
    assert result
    benchmark.extra_info["n_mds"] = n_mds
