"""SERVER — warm hosted sessions vs. cold per-request session builds.

The point of ``repro.server`` is amortization: a hosted session keeps its
database, hash indexes and delta engine warm across requests, so repeated
detect traffic pays only the marginal detection cost.  This driver measures
that directly over real HTTP round-trips against an in-process server:

* **warm** — one session created up front, then N ``POST .../detect``
  requests against it (the production serving path);
* **cold** — every request uploads the data, builds a fresh session,
  detects once and deletes it (what per-invocation CLI traffic amounts
  to).

The acceptance target is a >=5x warm-over-cold speedup per request at 10k
tuples.  Run standalone to produce ``BENCH_server.json``:

    python benchmarks/bench_server_throughput.py [--out BENCH_server.json]
    python benchmarks/bench_server_throughput.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.client import ServerClient
from repro.registry import encode
from repro.rules_json import database_schema_to_dict
from repro.server import make_server
from repro.workloads.customer import CustomerConfig, generate_customers

SIZES = [1_000, 10_000]
TARGET_SPEEDUP = 5.0
TARGET_TUPLES = 10_000


def _workload(n_tuples: int) -> Dict[str, Any]:
    """One customer workload as wire documents: schema, rules, rows."""
    workload = generate_customers(CustomerConfig(n_tuples=n_tuples, seed=11))
    relation = workload.db.relation("customer")
    return {
        "schema": database_schema_to_dict(workload.db.schema),
        "rules": [encode(rule) for rule in workload.cfds()],
        "rows": [t.as_dict() for t in relation],
    }


def _bench_size(
    client: ServerClient,
    documents: Dict[str, Any],
    n_tuples: int,
    warm_requests: int,
    cold_requests: int,
) -> Dict[str, Any]:
    data = {"customer": documents["rows"]}

    # -- warm: one session, many detects --------------------------------
    client.create_session(
        schema=documents["schema"],
        rules=documents["rules"],
        data=data,
        session_id="bench-warm",
    )
    client.detect("bench-warm")  # build the indexes outside the clock
    started = time.perf_counter()
    for _ in range(warm_requests):
        report = client.detect("bench-warm")
    warm_seconds = time.perf_counter() - started
    client.delete_session("bench-warm")

    # -- cold: create + detect + delete per request ----------------------
    started = time.perf_counter()
    for _ in range(cold_requests):
        client.create_session(
            schema=documents["schema"],
            rules=documents["rules"],
            data=data,
            session_id="bench-cold",
        )
        cold_report = client.detect("bench-cold")
        client.delete_session("bench-cold")
    cold_seconds = time.perf_counter() - started

    assert report["total"] == cold_report["total"], "warm/cold reports diverge"
    warm_per_request = warm_seconds / warm_requests
    cold_per_request = cold_seconds / cold_requests
    return {
        "n_tuples": n_tuples,
        "n_rules": len(documents["rules"]),
        "violations": report["total"],
        "warm_requests": warm_requests,
        "cold_requests": cold_requests,
        "warm_seconds_per_request": warm_per_request,
        "cold_seconds_per_request": cold_per_request,
        "warm_requests_per_second": 1.0 / warm_per_request,
        "cold_requests_per_second": 1.0 / cold_per_request,
        "speedup": cold_per_request / warm_per_request,
    }


def run(sizes: List[int], warm_requests: int, cold_requests: int) -> Dict[str, Any]:
    server = make_server(port=0, max_sessions=8)
    server.start_background()
    try:
        client = ServerClient(base_url=server.base_url, timeout=300.0)
        client.wait_ready()
        series = [
            _bench_size(
                client,
                _workload(n_tuples),
                n_tuples,
                warm_requests,
                cold_requests,
            )
            for n_tuples in sizes
        ]
    finally:
        server.shutdown()
    at_target = [
        entry["speedup"]
        for entry in series
        if entry["n_tuples"] >= TARGET_TUPLES
    ]
    top = max(entry["speedup"] for entry in series)
    return {
        "benchmark": "server_throughput",
        "workload": "customer over HTTP (warm hosted session vs cold builds)",
        "sizes": sizes,
        "target_speedup": TARGET_SPEEDUP,
        "target_tuples": TARGET_TUPLES,
        "series": series,
        "top_speedup": top,
        "speedup_at_target": max(at_target) if at_target else None,
        "meets_target": bool(at_target) and max(at_target) >= TARGET_SPEEDUP,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_server.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes / few requests; no speedup gate (CI smoke)",
    )
    parser.add_argument("--warm-requests", type=int, default=None)
    parser.add_argument("--cold-requests", type=int, default=None)
    args = parser.parse_args(argv)

    # the smoke size matches the committed baseline's smallest size so the
    # CI regression gate compares like scales
    sizes = [1_000] if args.smoke else SIZES
    warm_requests = args.warm_requests or (10 if args.smoke else 50)
    cold_requests = args.cold_requests or (3 if args.smoke else 10)

    document = run(sizes, warm_requests, cold_requests)
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    for entry in document["series"]:
        print(
            f"{entry['n_tuples']:>7} tuples: "
            f"warm {entry['warm_requests_per_second']:8.1f} req/s, "
            f"cold {entry['cold_requests_per_second']:8.1f} req/s, "
            f"speedup {entry['speedup']:6.1f}x"
        )
    print(
        f"top speedup {document['top_speedup']:.1f}x "
        f"(target {TARGET_SPEEDUP}x at {TARGET_TUPLES} tuples: "
        f"{'met' if document['meets_target'] else 'not gated' if args.smoke else 'MISSED'})"
    )
    if not args.smoke and not document["meets_target"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
