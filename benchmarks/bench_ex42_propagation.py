"""EX42 — Example 4.2: propagation through the three-country union view.

Σ0 ⊭σ0 f3 and Σ0 ⊭σ0 f3+i, yet Σ0 ⊨σ0 ϕ7 and Σ0 ⊨σ0 ϕ8: source FDs
survive integration only as *conditional* dependencies.
"""

import pytest

from benchmarks.conftest import print_table
from repro.cfd.model import CFD, UNNAMED
from repro.deps.fd import FD
from repro.paper import example42_sources
from repro.propagation.propagate import propagates
from repro.propagation.views import tagged_union_view
from repro.relational.domains import INT
from repro.relational.schema import Attribute


def _setup():
    schema = example42_sources()
    view = tagged_union_view(
        [("R1", 44), ("R2", 1), ("R3", 31)], Attribute("CC", INT)
    )
    sigma = [
        FD("R1", ["zip"], ["street"]),
        FD("R1", ["AC"], ["city"]),
        FD("R2", ["AC"], ["city"]),
        FD("R3", ["AC"], ["city"]),
    ]
    name = view.output_schema(schema).name
    return schema, view, sigma, name


def test_ex42_all_four_checks(benchmark):
    schema, view, sigma, name = _setup()
    targets = {
        "f3 (zip→street, unconditional)": CFD(
            name, ["zip"], ["street"], [{"zip": UNNAMED, "street": UNNAMED}]
        ),
        "f3+i (AC→city, unconditional)": CFD(
            name, ["AC"], ["city"], [{"AC": UNNAMED, "city": UNNAMED}]
        ),
        "ϕ7 (CC=44: zip→street)": CFD(
            name, ["CC", "zip"], ["street"],
            [{"CC": 44, "zip": UNNAMED, "street": UNNAMED}],
        ),
        "ϕ8 (CC=c: AC→city)": CFD(
            name, ["CC", "AC"], ["city"],
            [{"CC": c, "AC": UNNAMED, "city": UNNAMED} for c in (44, 31, 1)],
        ),
    }

    def run():
        return {
            label: propagates(schema, sigma, view, cfd)
            for label, cfd in targets.items()
        }

    outcome = benchmark(run)
    assert outcome["f3 (zip→street, unconditional)"] is False
    assert outcome["f3+i (AC→city, unconditional)"] is False
    assert outcome["ϕ7 (CC=44: zip→street)"] is True
    assert outcome["ϕ8 (CC=c: AC→city)"] is True
    print_table(
        "Example 4.2: Σ0 ⊨σ0 φ?",
        ["view dependency", "propagated"],
        sorted(outcome.items()),
    )


@pytest.mark.parametrize("branches", [3, 6, 12])
def test_ex42_scaling_in_branches(benchmark, branches):
    """Propagation cost grows with the number of union branches (branch
    pairs are quadratic)."""
    from repro.relational.domains import STRING
    from repro.relational.schema import DatabaseSchema, RelationSchema

    attrs = [("zip", STRING), ("street", STRING)]
    schema = DatabaseSchema(
        [RelationSchema(f"S{i}", attrs) for i in range(branches)]
    )
    view = tagged_union_view(
        [(f"S{i}", 100 + i) for i in range(branches)], Attribute("CC", INT)
    )
    sigma = [FD(f"S{i}", ["zip"], ["street"]) for i in range(branches)]
    name = view.output_schema(schema).name
    target = CFD(
        name, ["CC", "zip"], ["street"],
        [{"CC": 100, "zip": UNNAMED, "street": UNNAMED}],
    )
    result = benchmark(propagates, schema, sigma, view, target)
    assert result
    benchmark.extra_info["branches"] = branches
