"""CI gate: compare fresh ``BENCH_*.json`` speedups against committed baselines.

Every benchmark driver records per-size speedups in a JSON document that
is committed at the repo root.  In CI the smoke benchmarks overwrite those
files, so the workflow first copies the committed documents aside and then
runs this checker::

    cp BENCH_*.json ci-baselines/
    python benchmarks/bench_engine_scaling.py --quick --out BENCH_engine.json
    ...
    python benchmarks/check_bench_regression.py --baseline-dir ci-baselines \
        BENCH_engine.json BENCH_incremental.json BENCH_parallel.json \
        BENCH_server.json BENCH_columnar.json

Speedups are size-dependent (they grow with the data), and the smoke
drivers run smaller sizes than the committed full-size baselines — so
comparisons are made **per size**: each fresh data point is matched to
the baseline point at the same ``n_tuples``, falling back to the largest
baseline size at or below it (the nearest comparable scale; a smaller
reference only makes the check stricter).  A fresh speedup may fall short
of its matched baseline by the tolerance band (default 50% — CI runners
are noisy) but not further; any harder drop fails the job.

Comparisons that carry no signal on the host are *skipped*, not failed:

* the parallel benchmark needs >=4 CPUs (both in the fresh run and now) —
  single-core runners record honest sub-1x numbers that say nothing
  about a code regression;
* baseline points below 1x are skipped for the same reason.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

#: parallel speedups only mean anything with real cores to fan out over
PARALLEL_MIN_CPUS = 4


def _series_metric(field: str) -> Callable[[Dict[str, Any]], Dict[int, float]]:
    def extract(document: Dict[str, Any]) -> Dict[int, float]:
        points: Dict[int, float] = {}
        for entry in document.get("series", []):
            size, value = entry.get("n_tuples"), entry.get(field)
            if isinstance(size, int) and isinstance(value, (int, float)):
                points[size] = float(value)
        return points

    return extract


def _concurrency_metric(document: Dict[str, Any]) -> Dict[int, float]:
    """Per-client-count async-over-threaded speedups (the concurrency
    benchmark's "size" axis is clients, not tuples)."""
    points: Dict[int, float] = {}
    for entry in document.get("series", []):
        size, value = entry.get("clients"), entry.get("speedup")
        if isinstance(size, int) and isinstance(value, (int, float)):
            points[size] = float(value)
    return points


def _parallel_metric(document: Dict[str, Any]) -> Dict[int, float]:
    shards = str(document.get("target_shards", 4))
    points: Dict[int, float] = {}
    for entry in document.get("series", []):
        size = entry.get("n_tuples")
        value = entry.get("shards", {}).get(shards, {}).get("speedup")
        if isinstance(size, int) and isinstance(value, (int, float)):
            points[size] = float(value)
    return points


#: benchmark name -> [(metric label, per-size extractor)]
METRICS: Dict[str, List[Tuple[str, Callable[[Dict[str, Any]], Dict[int, float]]]]] = {
    "engine_scaling": [
        ("speedup_warm", _series_metric("speedup_warm")),
        ("speedup_cold", _series_metric("speedup_cold")),
        ("columnar_speedup_warm", _series_metric("columnar_speedup_warm")),
        ("columnar_speedup_cold", _series_metric("columnar_speedup_cold")),
    ],
    "columnar_memory": [("compression", _series_metric("compression"))],
    "incremental_delta_maintenance": [("speedup", _series_metric("speedup"))],
    "parallel_scaling": [("speedup_at_target_shards", _parallel_metric)],
    "server_throughput": [("speedup", _series_metric("speedup"))],
    # headroom = target_overhead / overhead: >=1 means the durable apply
    # path holds its <=1.3x latency target, and higher is better — the
    # orientation this gate's floor comparison expects
    "server_durability": [
        ("overhead_headroom", _series_metric("overhead_headroom"))
    ],
    "server_concurrency": [
        ("speedup_async_over_threaded", _concurrency_metric)
    ],
}


def _load(path: Path) -> Optional[Dict[str, Any]]:
    if not path.exists():
        return None
    with open(path) as handle:
        return json.load(handle)


def _bench_name(document: Dict[str, Any]) -> str:
    """The document's benchmark name, minus size-variant suffixes —
    ``incremental_delta_maintenance (smoke)`` compares against the
    committed full-size ``incremental_delta_maintenance`` baseline."""
    name = str(document.get("benchmark", "?"))
    return name.split(" (")[0].strip()


def _match_baseline_size(
    fresh_size: int, baseline_sizes: List[int]
) -> Optional[int]:
    """The baseline size a fresh point compares against: exact, else the
    largest baseline size at or below it (a smaller reference only makes
    the check stricter, since speedups grow with size).  ``None`` when
    every baseline point is *larger* — comparing a small fresh run
    against a bigger-scale baseline would flag scale, not regressions."""
    at_or_below = [s for s in baseline_sizes if s <= fresh_size]
    return max(at_or_below) if at_or_below else None


def _skip_reason(name: str, fresh: Dict[str, Any]) -> Optional[str]:
    if name in ("parallel_scaling", "server_concurrency"):
        host_cpus = os.cpu_count() or 1
        recorded_cpus = fresh.get("cpu_count", host_cpus)
        if min(host_cpus, recorded_cpus) < PARALLEL_MIN_CPUS:
            return (
                f"host has {min(host_cpus, recorded_cpus)} CPUs "
                f"({name} gate needs >={PARALLEL_MIN_CPUS})"
            )
    return None


def check_document(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Compare one fresh document against its baseline.

    Returns ``(failures, notes)`` — human-readable lines; empty failures
    means the document passed (or was skipped, explained in notes).
    """
    name = _bench_name(fresh)
    if name != _bench_name(baseline):
        return (
            [
                f"benchmark mismatch: fresh is {name!r}, baseline is "
                f"{_bench_name(baseline)!r}"
            ],
            [],
        )
    metrics = METRICS.get(name)
    if metrics is None:
        return [], [f"{name}: no registered metrics, nothing to check"]
    reason = _skip_reason(name, fresh)
    if reason is not None:
        return [], [f"{name}: skipped ({reason})"]

    failures: List[str] = []
    notes: List[str] = []
    for label, extract in metrics:
        fresh_points = extract(fresh)
        base_points = extract(baseline)
        if not fresh_points or not base_points:
            notes.append(
                f"{name}.{label}: no per-size data on one side "
                f"(fresh sizes {sorted(fresh_points)}, baseline sizes "
                f"{sorted(base_points)}), skipped"
            )
            continue
        for fresh_size in sorted(fresh_points):
            base_size = _match_baseline_size(fresh_size, sorted(base_points))
            if base_size is None:
                notes.append(
                    f"{name}.{label} at {fresh_size}: every baseline size "
                    f"is larger ({sorted(base_points)}), skipped"
                )
                continue
            fresh_value = fresh_points[fresh_size]
            base_value = base_points[base_size]
            where = (
                f"at {fresh_size}"
                if base_size == fresh_size
                else f"at {fresh_size} (baseline size {base_size})"
            )
            if base_value < 1.0:
                notes.append(
                    f"{name}.{label} {where}: baseline {base_value:.2f}x "
                    "carries no signal, skipped"
                )
                continue
            floor = base_value * (1.0 - tolerance)
            line = (
                f"{name}.{label} {where}: fresh {fresh_value:.2f}x vs "
                f"baseline {base_value:.2f}x (floor {floor:.2f}x)"
            )
            if fresh_value >= floor:
                notes.append(f"{line} -> ok")
            else:
                failures.append(f"{line} -> REGRESSION")
    return failures, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "fresh",
        nargs="+",
        help="fresh BENCH_*.json documents written by the bench drivers",
    )
    parser.add_argument(
        "--baseline-dir",
        default=None,
        help=(
            "directory holding the committed baseline documents under the "
            "same file names (default: compare each file against itself — "
            "useful only as a smoke check of this script)"
        ),
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help=(
            "allowed fractional shortfall against the baseline speedup "
            "(default 0.5: fresh must reach 50%% of baseline)"
        ),
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="fail if any named document is missing (default: warn + skip)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must be in [0, 1)")

    all_failures: List[str] = []
    for entry in args.fresh:
        fresh_path = Path(entry)
        baseline_path = (
            Path(args.baseline_dir) / fresh_path.name
            if args.baseline_dir
            else fresh_path
        )
        fresh = _load(fresh_path)
        baseline = _load(baseline_path)
        if fresh is None or baseline is None:
            missing = fresh_path if fresh is None else baseline_path
            line = f"{fresh_path.name}: {missing} missing, skipped"
            if args.require_all:
                all_failures.append(line)
            else:
                print(f"  [skip] {line}")
            continue
        failures, notes = check_document(fresh, baseline, args.tolerance)
        for note in notes:
            print(f"  [ok]   {note}")
        for failure in failures:
            print(f"  [FAIL] {failure}")
        all_failures.extend(failures)

    if all_failures:
        print(
            f"\n{len(all_failures)} benchmark regression(s) beyond the "
            f"{args.tolerance:.0%} tolerance band",
            file=sys.stderr,
        )
        return 1
    print("\nno benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
