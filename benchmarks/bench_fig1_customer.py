"""FIG1 — Figure 1: FDs are blind to D0's errors, CFDs are not.

Regenerates the paper's Figure 1 phenomenon and times FD- vs CFD-based
detection on the literal instance and on a scaled synthetic customer
relation of the same shape.
"""

import pytest

from benchmarks.conftest import print_table
from repro.cfd.detect import detect_violations
from repro.paper import fig1_fds, fig1_instance, fig2_cfds
from repro.workloads.customer import CustomerConfig, generate_customers


def test_fig1_fd_detection_baseline(benchmark):
    """f1, f2 find zero violations on D0 (the paper's point)."""
    db = fig1_instance()
    fds = fig1_fds()
    report = benchmark(detect_violations, db, fds)
    assert report.total == 0
    benchmark.extra_info["violations"] = report.total


def test_fig1_cfd_detection(benchmark):
    """ϕ1–ϕ3 flag every tuple of D0."""
    db = fig1_instance()
    cfds = list(fig2_cfds().values())
    report = benchmark(detect_violations, db, cfds)
    assert report.total == 4
    assert len(report.violating_tuples()) == 3
    benchmark.extra_info["violations"] = report.total
    print_table(
        "Figure 1: who flags D0?",
        ["rule set", "violations", "dirty tuples"],
        [
            ["FDs f1, f2", 0, 0],
            ["CFDs ϕ1–ϕ3", report.total, len(report.violating_tuples())],
        ],
    )


@pytest.mark.parametrize("n_tuples", [500, 2000])
def test_fig1_scaled_detection(benchmark, n_tuples):
    """Detection cost grows near-linearly in |D| (grouping-based scans)."""
    workload = generate_customers(
        CustomerConfig(n_tuples=n_tuples, error_rate=0.03)
    )
    cfds = workload.cfds()
    report = benchmark(detect_violations, workload.db, cfds)
    assert not report.is_clean()
    benchmark.extra_info["n_tuples"] = n_tuples
    benchmark.extra_info["violations"] = report.total
