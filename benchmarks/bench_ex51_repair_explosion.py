"""EX51 — Example 5.1: 2^n repairs from 2n tuples.

Enumerates the repair space for small n and counts it via independent
conflict components for larger n, reproducing the exponential blow-up
that motivates condensed representations (§5.3).
"""

import pytest

from benchmarks.conftest import print_table
from repro.paper import example51_instance, example51_key
from repro.repair.enumerate import count_repairs_by_components
from repro.repair.xrepair import all_x_repairs


@pytest.mark.parametrize("n", [2, 4, 6, 8])
def test_ex51_enumeration(benchmark, n):
    db = example51_instance(n)
    repairs = benchmark(all_x_repairs, db, [example51_key()])
    assert len(repairs) == 2 ** n
    benchmark.extra_info["n"] = n
    benchmark.extra_info["repairs"] = len(repairs)


@pytest.mark.parametrize("n", [8, 16, 24])
def test_ex51_component_counting(benchmark, n):
    """Counting by components stays cheap where enumeration explodes."""
    db = example51_instance(n)
    count = benchmark(count_repairs_by_components, db, [example51_key()])
    assert count == 2 ** n
    benchmark.extra_info["n"] = n
    benchmark.extra_info["repairs"] = count


def test_ex51_series(benchmark):
    rows = []
    for n in (1, 2, 4, 8, 16):
        db = example51_instance(n)
        rows.append(
            [n, 2 * n, count_repairs_by_components(db, [example51_key()])]
        )
    benchmark(lambda: count_repairs_by_components(example51_instance(8), [example51_key()]))
    print_table("Example 5.1: |Dn| vs #repairs", ["n", "tuples", "repairs"], rows)
    assert [r[2] for r in rows] == [2, 4, 16, 256, 65536]
