"""FIG3 + FIG4 — Figures 3/4: CIND detection on the source/target example
and on scaled synthetic order data.

D1 ⊨ ϕ4, ϕ5; D1 ⊭ ϕ6 (t9's audio book has no 'audio'-format match).
"""

import pytest

from benchmarks.conftest import print_table
from repro.cfd.detect import detect_violations
from repro.paper import fig3_instance, fig4_cinds
from repro.workloads.orders import OrdersConfig, generate_orders


def test_fig4_on_paper_instance(benchmark):
    db = fig3_instance()
    cinds = fig4_cinds()

    def run():
        return {name: list(c.violations(db)) for name, c in cinds.items()}

    outcome = benchmark(run)
    assert outcome["phi4"] == [] and outcome["phi5"] == []
    assert len(outcome["phi6"]) == 1
    print_table(
        "Figure 4: D1 ⊨ ψ?",
        ["CIND", "violations"],
        [(name, len(v)) for name, v in sorted(outcome.items())],
    )


@pytest.mark.parametrize("n_orders", [300, 1200])
def test_fig4_scaled(benchmark, n_orders):
    workload = generate_orders(OrdersConfig(n_orders=n_orders, error_rate=0.04))
    cinds = workload.cinds()
    report = benchmark(detect_violations, workload.db, cinds)
    assert not report.is_clean()
    benchmark.extra_info["n_orders"] = n_orders
    benchmark.extra_info["violations"] = report.total


def test_fig4_clean_data_no_false_positives(benchmark):
    workload = generate_orders(OrdersConfig(n_orders=400, error_rate=0.0))
    report = benchmark(detect_violations, workload.clean_db, workload.cinds())
    assert report.is_clean()
