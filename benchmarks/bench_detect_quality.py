"""EXP-DETECT — §1/§2 claim: conditional dependencies capture errors that
traditional dependencies miss.

Injects cell errors at the 1%–5% rates the paper quotes [65] and measures
the recall of FD-based vs CFD-based detection against ground truth.  The
shape to reproduce: CFD recall strictly dominates FD recall at every rate
(constant patterns flag errors tuple-locally; FDs need a colliding pair).
"""

import pytest

from benchmarks.conftest import print_table
from repro.cfd.detect import detect_violations
from repro.workloads.customer import CustomerConfig, generate_customers


def _recall(workload, dependencies):
    report = detect_violations(workload.db, dependencies)
    tuples = workload.db.relation("customer").tuples()
    index_of = {t: i for i, t in enumerate(tuples)}
    caught = {index_of[t] for _, t in report.violating_tuples()}
    dirty = workload.dirty_row_indices()
    if not dirty:
        return 1.0
    return len(caught & dirty) / len(dirty)


@pytest.mark.parametrize("error_rate", [0.01, 0.03, 0.05])
def test_cfd_recall_dominates_fd_recall(benchmark, error_rate):
    workload = generate_customers(
        CustomerConfig(n_tuples=1500, error_rate=error_rate, seed=21)
    )

    def run():
        return _recall(workload, workload.fds()), _recall(
            workload, workload.cfds()
        )

    fd_recall, cfd_recall = benchmark(run)
    assert cfd_recall > fd_recall  # the paper's qualitative claim
    benchmark.extra_info["error_rate"] = error_rate
    benchmark.extra_info["fd_recall"] = round(fd_recall, 3)
    benchmark.extra_info["cfd_recall"] = round(cfd_recall, 3)


def test_detect_quality_series(benchmark):
    rows = []
    for rate in (0.01, 0.02, 0.03, 0.05):
        workload = generate_customers(
            CustomerConfig(n_tuples=1500, error_rate=rate, seed=21)
        )
        rows.append(
            [
                f"{rate:.0%}",
                round(_recall(workload, workload.fds()), 3),
                round(_recall(workload, workload.cfds()), 3),
            ]
        )
    benchmark(lambda: None)
    print_table(
        "EXP-DETECT: injected-error recall",
        ["error rate", "FD recall", "CFD recall"],
        rows,
    )
    for row in rows:
        assert row[2] > row[1]


def test_no_false_positives_on_clean_data(benchmark):
    workload = generate_customers(CustomerConfig(n_tuples=800, error_rate=0.0))
    report = benchmark(detect_violations, workload.db, workload.cfds())
    assert report.is_clean()
