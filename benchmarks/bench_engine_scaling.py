"""ENGINE — shared-scan batch detection vs. naive per-dependency scans.

The workload mirrors the paper's SQL-based detection setting at scale: one
customer relation (100k tuples at the top size) and 20+ CFDs whose
tableaux share a handful of LHS signatures.  The naive baseline re-scans
the relation once per pattern row of every dependency
(O(|Σ|·|tableau|·|D|)); the engine partitions the relation once per
signature and resolves constant patterns by hash lookup, so detection cost
is dominated by a fixed number of passes — the asymptotic win the paper's
merged detection queries claim.

Each size is additionally measured with the engine over legacy *object*
storage (per-``Tuple`` Python objects): the ``columnar_speedup_*`` fields
are the single-thread win of the columnar store + vectorized kernels over
that pre-columnar baseline, gated at ≥5x cold on the top size.

Run standalone to produce ``BENCH_engine.json``:

    python benchmarks/bench_engine_scaling.py [--out BENCH_engine.json]

or under pytest for the smoke assertion (equivalence + speedup).
"""

from __future__ import annotations

import json
import sys
import time
from collections import Counter
from pathlib import Path
from typing import Dict, List

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cfd.model import CFD, UNNAMED
from repro.engine.naive import detect_violations_naive
from repro.engine.planner import plan_detection
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.session import Session
from repro.workloads.customer import CustomerConfig, generate_customers

SIZES = [1_000, 3_000, 10_000, 100_000]
TARGET_SPEEDUP = 10.0
#: columnar vs object single-thread detect at the top size (the tentpole
#: claim of the storage-layer rebuild)
COLUMNAR_TARGET_SPEEDUP = 5.0

#: (CC, AC) → city constants, as in repro.workloads.customer
_AREAS = {
    (44, 131): "EDI",
    (44, 20): "LDN",
    (44, 141): "GLA",
    (1, 908): "MH",
    (1, 212): "NYC",
    (1, 415): "SFO",
}


def engine_cfds() -> List[CFD]:
    """20+ CFDs over customer, clustered on a handful of LHS signatures."""
    cfds: List[CFD] = []
    for (cc, ac), city in sorted(_AREAS.items()):
        cfds.append(
            CFD(
                "customer",
                ["CC", "AC"],
                ["city"],
                [{"CC": cc, "AC": ac, "city": city}],
                name=f"area-city-{cc}-{ac}",
            )
        )
        cfds.append(
            CFD(
                "customer",
                ["AC"],
                ["CC"],
                [{"AC": ac, "CC": cc}],
                name=f"area-country-{ac}",
            )
        )
        cfds.append(
            CFD(
                "customer",
                ["city"],
                ["CC"],
                [{"city": city, "CC": cc}],
                name=f"city-country-{city}",
            )
        )
    cfds.append(
        CFD(
            "customer",
            ["CC", "AC"],
            ["city"],
            [{"CC": UNNAMED, "AC": UNNAMED, "city": UNNAMED}],
            name="f2-variable",
        )
    )
    cfds.append(
        CFD(
            "customer",
            ["CC", "zip"],
            ["street"],
            [{"CC": 44, "zip": UNNAMED, "street": UNNAMED}],
            name="uk-zip-street",
        )
    )
    cfds.append(
        CFD(
            "customer",
            ["zip"],
            ["city"],
            [{"zip": UNNAMED, "city": UNNAMED}],
            name="zip-city",
        )
    )
    cfds.append(
        CFD(
            "customer",
            ["CC", "AC", "phn"],
            ["street", "city", "zip"],
            [{a: UNNAMED for a in ("CC", "AC", "phn", "street", "city", "zip")}],
            name="f1-key",
        )
    )
    return cfds


def _multiset(violations):
    return Counter((id(v.dependency), v.tuples, v.reason) for v in violations)


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _with_storage(db: DatabaseInstance, storage: str) -> DatabaseInstance:
    """The same database rebuilt on an explicit storage backend."""
    relations = {}
    for rel in db:
        instance = RelationInstance(rel.schema, storage=storage)
        instance.extend_rows(rel.to_rows(), validate=False)
        relations[rel.schema.name] = instance
    return DatabaseInstance(db.schema, relations)


def measure(n_tuples: int, repeats: int = 3) -> Dict:
    # Low error rate: the comparison should measure scan structure, not the
    # (identical on both paths) cost of rendering violation messages.
    workload = generate_customers(
        CustomerConfig(n_tuples=n_tuples, error_rate=0.005, seed=17)
    )
    cfds = engine_cfds()

    naive_report = detect_violations_naive(workload.db, cfds)
    naive_seconds = _time(lambda: detect_violations_naive(workload.db, cfds), repeats)

    # Equivalence check on its own copy so it cannot pre-warm a timed one.
    engine_report = Session.from_instance(workload.db.copy(), cfds).detect()
    # Cold engine runs: each timed iteration gets a fresh session over a
    # fresh instance with empty index caches, so the timing includes index
    # construction.
    cold_sessions = [
        Session.from_instance(workload.db.copy(), cfds) for _ in range(repeats)
    ]
    cold_iter = iter(cold_sessions)
    engine_cold_seconds = _time(lambda: next(cold_iter).detect(), repeats)
    # Warm run: caches already populated (steady-state monitoring shape).
    warm_session = Session.from_instance(workload.db, cfds)
    engine_warm_seconds = _time(warm_session.detect, repeats)

    # The pre-columnar baseline: the same engine over legacy per-Tuple
    # object storage.  The columnar speedup is the single-thread detect
    # claim of the storage-layer rebuild.
    object_db = _with_storage(workload.db, "object")
    object_report = Session.from_instance(object_db.copy(), cfds).detect()
    object_cold = [
        Session.from_instance(object_db.copy(), cfds) for _ in range(repeats)
    ]
    object_iter = iter(object_cold)
    object_cold_seconds = _time(lambda: next(object_iter).detect(), repeats)
    object_warm_session = Session.from_instance(object_db, cfds)
    object_warm_seconds = _time(object_warm_session.detect, repeats)

    if _multiset(engine_report.violations) != _multiset(naive_report.violations):
        raise AssertionError(
            f"engine and naive reports differ at n={n_tuples}: "
            f"{engine_report.total} vs {naive_report.total} violations"
        )
    if _multiset(object_report.violations) != _multiset(naive_report.violations):
        raise AssertionError(
            f"object-storage and naive reports differ at n={n_tuples}: "
            f"{object_report.total} vs {naive_report.total} violations"
        )

    plan = plan_detection(cfds)
    return {
        "n_tuples": n_tuples,
        "n_cfds": len(cfds),
        "n_pattern_rows": sum(len(c.tableau) for c in cfds),
        "scan_groups": len(plan.scan_groups),
        "violations": naive_report.total,
        "naive_seconds": naive_seconds,
        "engine_cold_seconds": engine_cold_seconds,
        "engine_warm_seconds": engine_warm_seconds,
        "object_cold_seconds": object_cold_seconds,
        "object_warm_seconds": object_warm_seconds,
        "speedup_cold": naive_seconds / engine_cold_seconds,
        "speedup_warm": naive_seconds / engine_warm_seconds,
        "columnar_speedup_cold": object_cold_seconds / engine_cold_seconds,
        "columnar_speedup_warm": object_warm_seconds / engine_warm_seconds,
    }


def run(sizes=SIZES, repeats: int = 3) -> Dict:
    series = [measure(n, repeats) for n in sizes]
    top = series[-1]
    return {
        "benchmark": "engine_scaling",
        "workload": "customer",
        "sizes": sizes,
        "target_speedup": TARGET_SPEEDUP,
        "columnar_target_speedup": COLUMNAR_TARGET_SPEEDUP,
        "series": series,
        "top_speedup_cold": top["speedup_cold"],
        "top_speedup_warm": top["speedup_warm"],
        "top_columnar_speedup_cold": top["columnar_speedup_cold"],
        "top_columnar_speedup_warm": top["columnar_speedup_warm"],
        "meets_target": (
            top["speedup_cold"] >= TARGET_SPEEDUP
            and top["columnar_speedup_cold"] >= COLUMNAR_TARGET_SPEEDUP
        ),
    }


def test_engine_scaling_smoke():
    """Small-size smoke: identical violations, and the engine clearly wins."""
    result = measure(2_000, repeats=2)
    assert result["scan_groups"] < result["n_cfds"]
    assert result["speedup_cold"] > 3.0


def main(argv: List[str]) -> int:
    out = Path("BENCH_engine.json")
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    sizes = SIZES
    if "--quick" in argv:
        sizes = [500, 2_000]
    result = run(sizes)
    out.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["series"]:
        print(
            f"n={row['n_tuples']:>6}  naive={row['naive_seconds']:.3f}s  "
            f"engine(cold)={row['engine_cold_seconds']:.3f}s  "
            f"engine(warm)={row['engine_warm_seconds']:.3f}s  "
            f"object(cold)={row['object_cold_seconds']:.3f}s  "
            f"speedup={row['speedup_cold']:.1f}x (warm {row['speedup_warm']:.1f}x)  "
            f"columnar={row['columnar_speedup_cold']:.1f}x "
            f"(warm {row['columnar_speedup_warm']:.1f}x)"
        )
    print(
        f"top speedup vs naive: {result['top_speedup_cold']:.1f}x cold / "
        f"{result['top_speedup_warm']:.1f}x warm (target ≥{TARGET_SPEEDUP:.0f}x); "
        f"columnar vs object: {result['top_columnar_speedup_cold']:.1f}x cold / "
        f"{result['top_columnar_speedup_warm']:.1f}x warm "
        f"(target ≥{COLUMNAR_TARGET_SPEEDUP:.0f}x): "
        f"{'MET' if result['meets_target'] else 'MISSED'}"
    )
    # --quick is a CI smoke run at reduced sizes; only the full run gates
    # on the 10x target.
    return 0 if result["meets_target"] or "--quick" in argv else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
