"""SOAK — multi-tenant verified throughput under driver concurrency.

Every operation the soak driver issues is shadow-modelled and the final
state of every tenant is byte-verified against an offline replay, so the
numbers here are *verified* ops/s — the rate at which the server can
absorb mixed multi-tenant traffic while the harness proves it never
diverged.  The sweep scales the driver worker count over one in-process
server with eviction pressure (``max_sessions`` below the tenant count),
which is the serving configuration the soak exists to stress.

This benchmark is an operational artifact, not a regression gate: soak
throughput moves with host load and scheduler noise, so it is *not*
wired into ``check_bench_regression.py``.  Run standalone to produce
``BENCH_soak.json``:

    python benchmarks/bench_soak_throughput.py [--out BENCH_soak.json]
    python benchmarks/bench_soak_throughput.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.workloads.soak import InProcessServer, SoakConfig, run_soak

WORKER_SWEEP = [1, 4, 8]


def _bench_workers(
    workers: int, tenants: int, ops: int, max_sessions: int
) -> Dict[str, Any]:
    config = SoakConfig(
        tenants=tenants,
        ops=ops,
        seed=11,
        workers=workers,
        restarts=0,
        max_sessions=max_sessions,
        verify_every=25,
    )
    server = InProcessServer(port=0, max_sessions=max_sessions)
    try:
        report = run_soak(config, server)
    finally:
        server.close()
    if not report.ok:
        raise SystemExit(
            f"soak diverged during benchmark: {report.error or report.divergence}"
        )
    return {
        "workers": workers,
        "tenants": tenants,
        "ops": ops,
        "max_sessions": max_sessions,
        "elapsed_seconds": report.elapsed_seconds,
        "ops_per_second": ops / report.elapsed_seconds,
        "applied_rows": report.counters.get("applied_ops", 0),
        "verifications": report.counters.get("verifications", 0),
        "evictions_rebuilt": report.counters.get("evictions_rebuilt", 0),
        "counters": dict(report.counters),
    }


def run(sweep: List[int], tenants: int, ops: int, max_sessions: int) -> Dict[str, Any]:
    series = [
        _bench_workers(workers, tenants, ops, max_sessions)
        for workers in sweep
    ]
    base = series[0]["ops_per_second"]
    return {
        "benchmark": "soak_throughput",
        "workload": "verified multi-tenant soak over HTTP (in-process server)",
        "worker_sweep": sweep,
        "series": series,
        "peak_ops_per_second": max(e["ops_per_second"] for e in series),
        "scaling_vs_one_worker": [
            e["ops_per_second"] / base for e in series
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_soak.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="few tenants / few ops (CI smoke; artifact only, never gated)",
    )
    parser.add_argument("--tenants", type=int, default=None)
    parser.add_argument("--ops", type=int, default=None)
    args = parser.parse_args(argv)

    tenants = args.tenants or (8 if args.smoke else 64)
    ops = args.ops or (120 if args.smoke else 1_500)
    max_sessions = max(3, tenants // 4)
    sweep = [1, 4] if args.smoke else WORKER_SWEEP

    document = run(sweep, tenants, ops, max_sessions)
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    for entry in document["series"]:
        print(
            f"{entry['workers']:>2} workers: "
            f"{entry['ops_per_second']:8.1f} verified ops/s "
            f"({entry['elapsed_seconds']:.2f}s, "
            f"{entry['evictions_rebuilt']} rebuilds)"
        )
    print(f"peak {document['peak_ops_per_second']:.1f} verified ops/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
