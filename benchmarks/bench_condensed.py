"""EXP-NUCLEUS — §5.3: a single tableau represents an exponential repair
space.

For the Example 5.1 family: 2^n repairs, but the nucleus has n tuples and
answers conjunctive queries with the consistent answers directly.
"""

import pytest

from benchmarks.conftest import print_table
from repro.condensed.nucleus import certain_answers_on_nucleus, nucleus
from repro.cqa.certain import certain_answers
from repro.paper import example51_instance, example51_key
from repro.relational import algebra
from repro.repair.enumerate import count_repairs_by_components


@pytest.mark.parametrize("n", [4, 16, 64])
def test_nucleus_construction_scales(benchmark, n):
    db = example51_instance(n)
    g = benchmark(nucleus, db.relation("R"), [example51_key()])
    assert len(g) == n  # linear-size representation of 2^n repairs
    benchmark.extra_info["n"] = n
    benchmark.extra_info["nucleus_tuples"] = len(g)
    benchmark.extra_info["repairs_represented"] = 2 ** n if n <= 64 else None


def test_nucleus_answers_equal_consistent_answers(benchmark):
    db = example51_instance(5)
    # add a conflict-free tuple so the certain answer set is non-trivial
    db.relation("R").add(("stable", "b-clean"))
    key = example51_key()
    g = nucleus(db.relation("R"), [key])

    def query(instance):
        return algebra.project(instance, ["B"])

    nucleus_answers = benchmark(certain_answers_on_nucleus, g, query)
    reference = certain_answers(
        db, [key], lambda d: algebra.project(d.relation("R"), ["B"])
    )
    assert nucleus_answers == reference == {("b-clean",)}


@pytest.mark.parametrize("n", [8, 16, 32])
def test_wsd_succinct_representation(benchmark, n):
    """World-set decompositions ([4,5]): O(n) cells for 2^n worlds, with
    count and certain answers computed without enumeration."""
    from repro.condensed.wsd import decompose_repairs

    db = example51_instance(n)
    wsd = benchmark(decompose_repairs, db, [example51_key()])
    assert wsd.world_count() == 2 ** n
    assert wsd.size() <= 2 * n
    benchmark.extra_info["n"] = n
    benchmark.extra_info["worlds"] = wsd.world_count()
    benchmark.extra_info["cells_stored"] = wsd.size()


def test_condensed_series(benchmark):
    rows = []
    for n in (2, 8, 32):
        db = example51_instance(n)
        g = nucleus(db.relation("R"), [example51_key()])
        rows.append([n, count_repairs_by_components(db, [example51_key()]), len(g)])
    benchmark(lambda: nucleus(example51_instance(8).relation("R"), [example51_key()]))
    print_table(
        "EXP-NUCLEUS: repair space vs nucleus size",
        ["n", "#repairs", "nucleus tuples"],
        rows,
    )
    for n, repairs, size in rows:
        assert repairs == 2 ** n and size == n
