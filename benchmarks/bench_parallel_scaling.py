"""PARALLEL — sharded detection fan-out vs the serial indexed executor.

The workload is steady-state monitoring at scale: one customer relation
(100k tuples at the top size) under the established 25-CFD detection set
plus a family of variable "monitor" CFDs — independent teams' rules
sharing a handful of LHS signatures, which is exactly the shape whose
evaluation cost the sharded executor fans out.  The serial baseline is
the warm indexed executor; the parallel engine runs as a *warm*
:class:`~repro.engine.parallel.ParallelExecutor` (shard buckets + worker
pool cached across calls, the server shape) at 2 / 4 / 8 shards.

Speedup is bounded by the machine: the per-shard evaluation parallelizes,
the bucket build and the payload merge do not, and a pool cannot beat the
serial path on fewer than ~4 cores.  The emitted JSON therefore records
``cpu_count`` and gates the ≥2x-at-4-shards acceptance target only when
at least 4 CPUs are available (``target_applicable``); on smaller hosts
the run still verifies equivalence and reports honest numbers.

Run standalone to produce ``BENCH_parallel.json``:

    python benchmarks/bench_parallel_scaling.py [--smoke] [--out PATH]

or under pytest for the smoke assertion (equivalence across shard counts).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_engine_scaling import engine_cfds

from repro.cfd.model import CFD, UNNAMED
from repro.engine.delta import violation_multiset
from repro.engine.executor import detect_violations_indexed
from repro.engine.parallel import ParallelExecutor
from repro.workloads.customer import CustomerConfig, generate_customers

SIZES = [10_000, 30_000, 100_000]
SMOKE_SIZES = [2_000, 5_000]
SHARD_COUNTS = [2, 4, 8]
TARGET_SPEEDUP = 2.0
TARGET_SHARDS = 4

#: variable embedded FDs that hold on clean data (violations stay rare,
#: so the comparison measures scan structure, not payload plumbing)
_MONITOR_SHAPES = [
    (["AC"], ["CC"]),
    (["city"], ["CC"]),
    (["zip"], ["city"]),
    (["CC", "AC"], ["city"]),
    (["AC"], ["city"]),
    (["zip"], ["CC"]),
]


def parallel_cfds(monitor_replicas: int = 10) -> List[CFD]:
    """The engine benchmark's 25 CFDs + replicated variable monitors."""
    cfds = engine_cfds()
    for replica in range(monitor_replicas):
        for index, (lhs, rhs) in enumerate(_MONITOR_SHAPES):
            cfds.append(
                CFD(
                    "customer",
                    lhs,
                    rhs,
                    [{a: UNNAMED for a in lhs + rhs}],
                    name=f"monitor-{replica}-{index}",
                )
            )
    return cfds


def _time(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def measure(n_tuples: int, repeats: int = 3, monitor_replicas: int = 10) -> Dict:
    workload = generate_customers(
        CustomerConfig(n_tuples=n_tuples, error_rate=0.005, seed=17)
    )
    db = workload.db
    cfds = parallel_cfds(monitor_replicas)

    serial_report = detect_violations_indexed(db, cfds)  # warms the indexes
    serial_seconds = _time(lambda: detect_violations_indexed(db, cfds), repeats)
    serial = violation_multiset(serial_report.violations)

    row: Dict = {
        "n_tuples": n_tuples,
        "n_cfds": len(cfds),
        "violations": serial_report.total,
        "serial_seconds": serial_seconds,
        "shards": {},
    }
    for shards in SHARD_COUNTS:
        # Warm executor: pool (when multi-core) and shard buckets persist
        # across the timed repeats, exactly like a serving deployment.
        with ParallelExecutor(shards=shards) as executor:
            report = executor.detect(db, cfds)
            if violation_multiset(report.violations) != serial:
                raise AssertionError(
                    f"parallel({shards}) diverged from serial at n={n_tuples}"
                )
            seconds = _time(lambda: executor.detect(db, cfds), repeats)
            row["shards"][str(shards)] = {
                "seconds": seconds,
                "speedup": serial_seconds / seconds,
                "pool_workers": executor.stats.pool_workers,
            }
    return row


def run(sizes=SIZES, repeats: int = 3, monitor_replicas: int = 10) -> Dict:
    cpu_count = os.cpu_count() or 1
    series = [measure(n, repeats, monitor_replicas) for n in sizes]
    top = series[-1]
    top_speedup = top["shards"][str(TARGET_SHARDS)]["speedup"]
    target_applicable = cpu_count >= TARGET_SHARDS
    return {
        "benchmark": "parallel_scaling",
        "workload": "customer + monitor CFDs",
        "cpu_count": cpu_count,
        "sizes": sizes,
        "shard_counts": SHARD_COUNTS,
        "target_speedup": TARGET_SPEEDUP,
        "target_shards": TARGET_SHARDS,
        "series": series,
        "top_speedup_at_target_shards": top_speedup,
        "target_applicable": target_applicable,
        "meets_target": top_speedup >= TARGET_SPEEDUP,
    }


def test_parallel_scaling_smoke():
    """Small-size smoke: every shard count reports the serial violations."""
    row = measure(2_000, repeats=1, monitor_replicas=2)
    assert row["violations"] > 0
    assert set(row["shards"]) == {str(s) for s in SHARD_COUNTS}
    assert all(entry["seconds"] > 0 for entry in row["shards"].values())


def main(argv: List[str]) -> int:
    out = Path("BENCH_parallel.json")
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    smoke = "--smoke" in argv
    sizes = SMOKE_SIZES if smoke else SIZES
    repeats = 2 if smoke else 3
    replicas = 3 if smoke else 10
    result = run(sizes, repeats=repeats, monitor_replicas=replicas)
    out.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["series"]:
        shard_text = "  ".join(
            f"s={shards}:{entry['seconds']:.3f}s({entry['speedup']:.2f}x)"
            for shards, entry in row["shards"].items()
        )
        print(
            f"n={row['n_tuples']:>6}  serial={row['serial_seconds']:.3f}s  "
            f"{shard_text}"
        )
    verdict = "MET" if result["meets_target"] else "MISSED"
    if not result["target_applicable"]:
        verdict += f" (not gated: only {result['cpu_count']} CPU(s))"
    print(
        f"speedup at {TARGET_SHARDS} shards, top size: "
        f"{result['top_speedup_at_target_shards']:.2f}x "
        f"(target >={TARGET_SPEEDUP:.0f}x: {verdict})"
    )
    # Smoke runs and small hosts report without gating; the full run on a
    # multi-core machine enforces the acceptance target.
    if smoke or not result["target_applicable"]:
        return 0
    return 0 if result["meets_target"] else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
