"""SERVER — asyncio snapshot-read front end vs. the threaded transport.

The async server (:mod:`repro.server.aio`) answers read verbs against
versioned session snapshots: a warm ``detect`` on an unchanged engine is
served straight from the snapshot cache on the event loop, without
queueing on the session's write lock or re-running detection.  The
threaded transport re-enters the gated verb path — session lock plus a
full (warm) detection — on every request.  This driver measures what
that buys under concurrency, over real HTTP round-trips:

* **scaling series** — N keep-alive clients (1 → 256) hammer warm
  ``POST /v1/sessions/{id}/detect`` on both servers; each point records
  req/s and p50/p99 latency, and ``speedup`` = async req/s over threaded
  req/s.
* **read-p99-under-writers** — a write mix (apply/undo cycles) runs
  beside the readers; the figure of merit is the *reader* p99, which the
  async server bounds by answering snapshot hits between invalidations.

The acceptance target is a >=10x async-over-threaded speedup at 64
clients — on hosts with >=4 CPUs.  Below that the document records
honest sub-target numbers and the gate (here and in
``check_bench_regression.py``) is skipped: a single-core container
serializes both transports onto the same core and says nothing about a
code regression.

    python benchmarks/bench_server_concurrency.py [--out BENCH_concurrency.json]
    python benchmarks/bench_server_concurrency.py --smoke   # CI-sized
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.client import ServerClient
from repro.registry import encode
from repro.rules_json import database_schema_to_dict
from repro.server import make_async_server, make_server
from repro.workloads.customer import CustomerConfig, generate_customers

TARGET_SPEEDUP = 10.0
TARGET_CLIENTS = 64
MIN_CPUS = 4
CLIENT_COUNTS = [1, 4, 16, 64, 256]
SMOKE_CLIENT_COUNTS = [1, 8]


def _workload(n_tuples: int) -> Dict[str, Any]:
    workload = generate_customers(CustomerConfig(n_tuples=n_tuples, seed=11))
    relation = workload.db.relation("customer")
    return {
        "schema": database_schema_to_dict(workload.db.schema),
        "rules": [encode(rule) for rule in workload.cfds()],
        "rows": [t.as_dict() for t in relation],
    }


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


class _Worker(threading.Thread):
    """One keep-alive HTTP client issuing a fixed request loop."""

    def __init__(
        self,
        base_url: str,
        request: Callable[[http.client.HTTPConnection], int],
        requests: int,
        barrier: threading.Barrier,
    ) -> None:
        super().__init__(daemon=True)
        parts = urlsplit(base_url)
        self._host = parts.hostname or "127.0.0.1"
        self._port = parts.port or 80
        self._request = request
        self._requests = requests
        self._barrier = barrier
        self.latencies: List[float] = []
        self.error: Optional[str] = None

    def run(self) -> None:
        try:
            conn = http.client.HTTPConnection(
                self._host, self._port, timeout=120
            )
            # connect before the barrier, with retries: hundreds of
            # simultaneous connects can transiently overflow the accept
            # queue even with a deep backlog
            for attempt in range(50):
                try:
                    conn.connect()
                    break
                except OSError:
                    time.sleep(0.01 * (attempt + 1))
            else:
                conn.connect()
            self._barrier.wait()
            for _ in range(self._requests):
                started = time.perf_counter()
                status = self._request(conn)
                self.latencies.append(time.perf_counter() - started)
                if status != 200:
                    self.error = f"unexpected status {status}"
                    return
            conn.close()
        except Exception as exc:  # surfaced by the driver below
            self.error = repr(exc)


def _detect_request(session_id: str) -> Callable[..., int]:
    body = json.dumps({"include_violations": True})
    path = f"/v1/sessions/{session_id}/detect"
    headers = {"Content-Type": "application/json"}

    def issue(conn: http.client.HTTPConnection) -> int:
        conn.request("POST", path, body=body, headers=headers)
        response = conn.getresponse()
        response.read()
        return response.status

    return issue


def _write_cycle_request(session_id: str) -> Callable[..., int]:
    """One apply+undo pair per call — a pure write load that invalidates
    any read snapshot on every cycle."""
    apply_path = f"/v1/sessions/{session_id}/apply"
    undo_path = f"/v1/sessions/{session_id}/undo"
    headers = {"Content-Type": "application/json"}
    changeset = json.dumps(
        {
            "ops": [
                {
                    "op": "insert",
                    "relation": "customer",
                    "row": None,  # patched below per workload
                }
            ]
        }
    )

    def issue(conn: http.client.HTTPConnection) -> int:
        conn.request("POST", apply_path, body=issue.changeset, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        if response.status != 200:
            return response.status
        token = json.loads(raw)["undo_token"]
        conn.request(
            "POST",
            undo_path,
            body=json.dumps({"token": token}),
            headers=headers,
        )
        response = conn.getresponse()
        response.read()
        return response.status

    issue.changeset = changeset  # type: ignore[attr-defined]
    return issue


def _drive(
    base_url: str,
    request: Callable[..., int],
    clients: int,
    requests_per_client: int,
    writers: int = 0,
    writer_request: Optional[Callable[..., int]] = None,
) -> Dict[str, Any]:
    """Run ``clients`` readers (plus optional writers) to completion and
    aggregate reader latency."""
    barrier = threading.Barrier(clients + writers)
    readers = [
        _Worker(base_url, request, requests_per_client, barrier)
        for _ in range(clients)
    ]
    write_workers = [
        _Worker(base_url, writer_request, requests_per_client, barrier)
        for _ in range(writers)
    ]
    started = time.perf_counter()
    for worker in readers + write_workers:
        worker.start()
    for worker in readers:
        worker.join()
    elapsed = time.perf_counter() - started
    for worker in write_workers:
        worker.join()
    for worker in readers + write_workers:
        if worker.error is not None:
            raise RuntimeError(f"client worker failed: {worker.error}")
    latencies = sorted(
        latency for worker in readers for latency in worker.latencies
    )
    total = clients * requests_per_client
    return {
        "requests": total,
        "seconds": elapsed,
        "requests_per_second": total / elapsed if elapsed > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
    }


def _boot_pair(
    documents: Dict[str, Any], session_id: str
) -> List[Tuple[str, Any]]:
    """One threaded and one async server, each hosting the same warm
    session."""
    pair = []
    for label, factory in (("threaded", make_server), ("async", make_async_server)):
        server = factory(port=0, max_sessions=8)
        server.start_background()
        client = ServerClient(base_url=server.base_url, timeout=300.0)
        client.wait_ready()
        client.create_session(
            schema=documents["schema"],
            rules=documents["rules"],
            data={"customer": documents["rows"]},
            session_id=session_id,
        )
        client.detect(session_id)  # warm the engine outside the clock
        pair.append((label, server))
    return pair


def run(
    n_tuples: int,
    client_counts: List[int],
    total_requests: int,
    writer_requests: int,
) -> Dict[str, Any]:
    documents = _workload(n_tuples)
    sample_row = dict(documents["rows"][0])
    sample_row["phn"] = 9_999_999  # a fresh row: no clash with the workload
    write_request = _write_cycle_request("bench")
    write_request.changeset = json.dumps(  # type: ignore[attr-defined]
        {"ops": [{"op": "insert", "relation": "customer", "row": sample_row}]}
    )

    pair = _boot_pair(documents, "bench")
    series: List[Dict[str, Any]] = []
    read_under_writers: Dict[str, Any] = {"writers": 2}
    try:
        detect = _detect_request("bench")
        for clients in client_counts:
            per_client = max(1, total_requests // clients)
            entry: Dict[str, Any] = {
                "clients": clients,
                "requests_per_client": per_client,
            }
            for label, server in pair:
                entry[label] = _drive(
                    server.base_url, detect, clients, per_client
                )
            entry["speedup"] = (
                entry["async"]["requests_per_second"]
                / entry["threaded"]["requests_per_second"]
            )
            series.append(entry)

        readers = min(16, max(client_counts))
        for label, server in pair:
            read_under_writers[label] = _drive(
                server.base_url,
                detect,
                readers,
                max(1, writer_requests),
                writers=2,
                writer_request=write_request,
            )
        read_under_writers["readers"] = readers
    finally:
        for _label, server in pair:
            server.shutdown()

    cpu_count = os.cpu_count() or 1
    at_target = [
        entry["speedup"]
        for entry in series
        if entry["clients"] >= TARGET_CLIENTS
    ]
    gated = cpu_count >= MIN_CPUS
    return {
        "benchmark": "server_concurrency",
        "workload": (
            "customer detect over HTTP: asyncio snapshot reads vs the "
            "threaded transport"
        ),
        "n_tuples": n_tuples,
        "cpu_count": cpu_count,
        "target_speedup": TARGET_SPEEDUP,
        "target_clients": TARGET_CLIENTS,
        "min_cpus": MIN_CPUS,
        "series": series,
        "read_under_writers": read_under_writers,
        "top_speedup": max(entry["speedup"] for entry in series),
        "speedup_at_target": max(at_target) if at_target else None,
        "gated": gated,
        "meets_target": (
            bool(at_target) and max(at_target) >= TARGET_SPEEDUP
            if gated
            else None
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_concurrency.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="few clients / few requests; no speedup gate (CI smoke)",
    )
    parser.add_argument("--tuples", type=int, default=None)
    parser.add_argument("--requests", type=int, default=None)
    args = parser.parse_args(argv)

    client_counts = SMOKE_CLIENT_COUNTS if args.smoke else CLIENT_COUNTS
    n_tuples = args.tuples or (500 if args.smoke else 2_000)
    total_requests = args.requests or (64 if args.smoke else 512)
    writer_requests = 4 if args.smoke else 32

    document = run(n_tuples, client_counts, total_requests, writer_requests)
    Path(args.out).write_text(json.dumps(document, indent=2) + "\n")
    for entry in document["series"]:
        print(
            f"{entry['clients']:>4} clients: "
            f"async {entry['async']['requests_per_second']:8.1f} req/s "
            f"(p99 {entry['async']['p99_ms']:7.2f} ms), "
            f"threaded {entry['threaded']['requests_per_second']:8.1f} req/s "
            f"(p99 {entry['threaded']['p99_ms']:7.2f} ms), "
            f"speedup {entry['speedup']:5.2f}x"
        )
    rw = document["read_under_writers"]
    print(
        f"read p99 under {rw['writers']} writers: "
        f"async {rw['async']['p99_ms']:.2f} ms, "
        f"threaded {rw['threaded']['p99_ms']:.2f} ms"
    )
    if not document["gated"]:
        print(
            f"speedup gate skipped: host has {document['cpu_count']} CPUs "
            f"(needs >={MIN_CPUS}); recorded numbers are honest but carry "
            "no concurrency signal"
        )
        return 0
    print(
        f"speedup at >={TARGET_CLIENTS} clients: "
        f"{document['speedup_at_target']} "
        f"(target {TARGET_SPEEDUP}x: "
        f"{'met' if document['meets_target'] else 'not gated' if args.smoke else 'MISSED'})"
    )
    if not args.smoke and not document["meets_target"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
