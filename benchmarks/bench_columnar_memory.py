"""COLUMNAR — bytes per tuple: object storage vs the encoded column store.

Both backends hold the same customer relation; memory is measured by a
``sys.getsizeof`` deep walk over everything the instance owns (containers
followed recursively, shared values counted once via ``id``).  Object
storage pays a ``Tuple`` object, its value-tuple and a dict slot per row;
the columnar store pays one machine-word code per cell plus one interned
representative per *distinct* value, so bytes/tuple shrink with value
repetition — the ``compression`` field is the per-size ratio.

Run standalone to produce ``BENCH_columnar.json``:

    python benchmarks/bench_columnar_memory.py [--out BENCH_columnar.json]

or under pytest for the smoke assertion (columnar strictly smaller).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Set

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.relational.instance import RelationInstance
from repro.workloads.customer import CustomerConfig, generate_customers

SIZES = [10_000, 100_000]


def deep_sizeof(root: object) -> int:
    """Total ``sys.getsizeof`` of ``root`` and every object reachable from
    it through containers and ``__slots__``/``__dict__``, counted once."""
    seen: Set[int] = set()
    total = 0
    stack: List[object] = [root]
    while stack:
        obj = stack.pop()
        if id(obj) in seen:
            continue
        seen.add(id(obj))
        total += sys.getsizeof(obj)
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
        else:
            attrs = getattr(obj, "__dict__", None)
            if attrs is not None:
                stack.append(attrs)
            for name in getattr(type(obj), "__slots__", ()):
                if hasattr(obj, name):
                    stack.append(getattr(obj, name))
    return total


def _instance_bytes(schema, rows: Iterable[tuple], storage: str) -> int:
    instance = RelationInstance(schema, storage=storage)
    instance.extend_rows(rows, validate=False)
    if storage == "object":
        # Force the tuple materialization object storage always carries.
        for t in instance:
            t.values()
    return deep_sizeof(instance)


def measure(n_tuples: int) -> Dict:
    workload = generate_customers(
        CustomerConfig(n_tuples=n_tuples, error_rate=0.005, seed=17)
    )
    relation = workload.db.relation("customer")
    rows = relation.to_rows()
    object_bytes = _instance_bytes(relation.schema, rows, "object")
    columnar_bytes = _instance_bytes(relation.schema, rows, "columnar")
    return {
        "n_tuples": n_tuples,
        "object_bytes": object_bytes,
        "columnar_bytes": columnar_bytes,
        "object_bytes_per_tuple": object_bytes / n_tuples,
        "columnar_bytes_per_tuple": columnar_bytes / n_tuples,
        "compression": object_bytes / columnar_bytes,
    }


def run(sizes=SIZES) -> Dict:
    series = [measure(n) for n in sizes]
    top = series[-1]
    return {
        "benchmark": "columnar_memory",
        "workload": "customer",
        "sizes": sizes,
        "series": series,
        "top_compression": top["compression"],
    }


def test_columnar_memory_smoke():
    """Columnar must be strictly smaller per tuple than object storage."""
    result = measure(5_000)
    assert result["columnar_bytes"] < result["object_bytes"]
    assert result["compression"] > 1.0


def main(argv: List[str]) -> int:
    out = Path("BENCH_columnar.json")
    if "--out" in argv:
        out = Path(argv[argv.index("--out") + 1])
    sizes = SIZES
    if "--quick" in argv:
        sizes = [2_000, 10_000]
    result = run(sizes)
    out.write_text(json.dumps(result, indent=2) + "\n")
    for row in result["series"]:
        print(
            f"n={row['n_tuples']:>6}  "
            f"object={row['object_bytes_per_tuple']:.0f} B/tuple  "
            f"columnar={row['columnar_bytes_per_tuple']:.0f} B/tuple  "
            f"compression={row['compression']:.1f}x"
        )
    print(f"top compression: {result['top_compression']:.1f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
