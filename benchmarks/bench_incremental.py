"""INCREMENTAL — delta maintenance vs. full indexed re-detection.

The repair/monitoring loop applies a batch of edits and needs the
violation set again.  PR 1's answer was to re-run the full indexed
detection (each relation re-partitioned once per signature — already ≥10×
over naive).  The delta engine answers from the batch itself: it patches
its maintained partitions and re-evaluates only the partition keys and
inclusion keys the batch touched, so per-batch cost tracks the batch size,
not the relation size.

The workload is the scaled customer relation (10k tuples at the top size)
under the full CFD/FD rule set, absorbing seeded 100-edit batches of
mixed inserts/deletes/cell-updates.  Two mirrored instances receive every
batch; per batch we time

* ``delta``  — ``DeltaEngine.apply(changeset)`` on the engine's instance
  (apply the edits + maintain the violation set), and
* ``full``   — the same changeset applied to the mirror instance followed
  by ``detect_violations_indexed`` with its then-cold index caches (what
  apply-then-re-detect costs without the delta engine),

assert both report the identical violation multiset, and record the
aggregate speedup.  Target: ≥10× at 10k tuples / 100-edit batches.

Run standalone to produce ``BENCH_incremental.json``:

    python benchmarks/bench_incremental.py [--out BENCH_incremental.json]
    python benchmarks/bench_incremental.py --smoke   # CI-sized quick run

or under pytest for the smoke assertion (equivalence + speedup).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List

if __name__ == "__main__":  # allow running without an installed package
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine.delta import violation_multiset
from repro.engine.executor import detect_violations_indexed
from repro.session import Session
from repro.workloads.customer import CustomerConfig, CustomerWorkload, generate_customers
from repro.workloads.stream import StreamConfig, stream_edits

SIZES = [1_000, 3_000, 10_000]
N_BATCHES = 10
BATCH_SIZE = 100
TARGET_SPEEDUP = 10.0


def rules() -> list:
    """The customer CFDs plus the traditional FDs — a mixed Σ with shared
    LHS signatures, the shape the engine's planner optimizes for."""
    return list(CustomerWorkload.cfds()) + list(CustomerWorkload.fds())


def measure(n_tuples: int, n_batches: int = N_BATCHES, batch_size: int = BATCH_SIZE) -> Dict:
    workload = generate_customers(
        CustomerConfig(n_tuples=n_tuples, error_rate=0.01, seed=23)
    )
    db = workload.db
    mirror = db.copy()
    deps = rules()
    session = Session.from_instance(db, deps)
    engine = session.engine  # force lazy construction outside the timed loop

    delta_seconds: List[float] = []
    full_seconds: List[float] = []
    batch_stats: List[Dict] = []
    config = StreamConfig(n_batches=n_batches, batch_size=batch_size, seed=31)
    for index, batch in enumerate(stream_edits(db, config)):
        started = time.perf_counter()
        delta = session.apply(batch)
        delta_elapsed = time.perf_counter() - started

        # The path without a delta engine: apply the same batch to the
        # mirror instance, then re-detect.  The mutations bumped the
        # mirror's relation versions, so the cached indexes are invalid and
        # this timing includes the re-partitioning a fresh detection pays.
        started = time.perf_counter()
        batch.apply_to(mirror)
        report = detect_violations_indexed(mirror, deps)
        full_elapsed = time.perf_counter() - started

        if violation_multiset(engine.violations()) != violation_multiset(report.violations):
            raise AssertionError(
                f"delta and full re-detection disagree at n={n_tuples}, "
                f"batch={index}: {engine.total_violations()} vs {report.total}"
            )
        delta_seconds.append(delta_elapsed)
        full_seconds.append(full_elapsed)
        batch_stats.append(
            {
                "batch": index,
                "added": len(delta.added),
                "removed": len(delta.removed),
                "violations": delta.remaining,
                "delta_seconds": delta_elapsed,
                "full_seconds": full_elapsed,
            }
        )

    total_delta = sum(delta_seconds)
    total_full = sum(full_seconds)
    return {
        "n_tuples": n_tuples,
        "n_dependencies": len(deps),
        "n_batches": n_batches,
        "batch_size": batch_size,
        "keys_reevaluated": engine.stats.keys_reevaluated,
        "delta_seconds_total": total_delta,
        "full_seconds_total": total_full,
        "delta_seconds_per_batch": total_delta / n_batches,
        "full_seconds_per_batch": total_full / n_batches,
        "speedup": total_full / total_delta,
        "batches": batch_stats,
    }


def run(sizes=SIZES) -> Dict:
    series = [measure(n) for n in sizes]
    top = series[-1]
    return {
        "benchmark": "incremental_delta_maintenance",
        "workload": "customer + stream edits",
        "sizes": sizes,
        "batch_size": BATCH_SIZE,
        "n_batches": N_BATCHES,
        "target_speedup": TARGET_SPEEDUP,
        "series": series,
        "top_speedup": top["speedup"],
        "meets_target": top["speedup"] >= TARGET_SPEEDUP,
    }


SMOKE_SPEEDUP = 1.5  # at small sizes fixed overheads dominate; the full
# 10k run is what gates the 10x target


def test_incremental_smoke():
    """Small-size smoke: identical violations (asserted inside measure),
    and the delta path clearly beats paying a full re-detection per
    batch."""
    result = measure(2_000, n_batches=4, batch_size=50)
    assert result["speedup"] > SMOKE_SPEEDUP
    # maintenance work tracks the batches, not the relation
    assert result["keys_reevaluated"] < 2_000


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_incremental.json")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: small relation, fewer batches, no 10x gate",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        # Smoke gates on correctness only — measure() asserts the delta
        # and full paths report identical violations on every batch.  The
        # speedup is recorded but not enforced: 3 small batches on a noisy
        # shared runner is no basis for a timing gate; the 10x acceptance
        # target is gated by the full run.
        result = {
            "benchmark": "incremental_delta_maintenance (smoke)",
            "target_speedup": None,
            "series": [measure(1_000, n_batches=3, batch_size=50)],
        }
        result["top_speedup"] = result["series"][-1]["speedup"]
        result["meets_target"] = True
    else:
        result = run()
    Path(args.out).write_text(json.dumps(result, indent=2))
    for row in result["series"]:
        print(
            f"n={row['n_tuples']:>6}  "
            f"delta/batch={row['delta_seconds_per_batch'] * 1e3:8.2f} ms  "
            f"full/batch={row['full_seconds_per_batch'] * 1e3:8.2f} ms  "
            f"speedup={row['speedup']:6.1f}x"
        )
    target = result["target_speedup"]
    gate = f"(target {target}x) → " if target else "(correctness-gated smoke) → "
    print(
        f"top speedup {result['top_speedup']:.1f}x "
        + gate
        + ("PASS" if result["meets_target"] else "FAIL")
    )
    return 0 if result["meets_target"] else 1


if __name__ == "__main__":
    sys.exit(main())
