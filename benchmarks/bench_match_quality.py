"""EXP-MATCH — §4.2: "derived RCKs indeed improve the quality and
efficiency of various object identification methods" [38].

Three regimes on seeded card/billing data (ground-truth pairs known):

* **direct** application of the given MDs φ1–φ4 (§3.3's practical mode:
  a ⇋-premise is witnessed only by raw equality) — the baseline;
* direct application of φ1–φ4 **plus the derived RCKs**, which compile
  the reasoning chain into source-attribute comparisons — the quality
  claim;
* the full **chaining** engine (fixpoint over derived ⇋ facts) — the
  semantic ceiling the derived rules approximate in a single pass.

Efficiency: blocking on the RCKs' equality premises cuts attribute
comparisons by an order of magnitude at identical matches.
"""

import pytest

from benchmarks.conftest import print_table
from repro.md.blocking import BlockedObjectIdentifier
from repro.md.matching import ObjectIdentifier
from repro.md.rck import derive_rcks
from repro.paper import YB, YC, example31_mds
from repro.workloads.card_billing import CardBillingConfig, generate_card_billing

TARGET = (list(YC), list(YB))


def _workload():
    return generate_card_billing(
        CardBillingConfig(n_people=120, unrelated_billing=40, seed=17)
    )


def _rules():
    base = list(example31_mds().values())
    rcks = derive_rcks(base, list(YC), list(YB), max_length=3)
    return base, rcks


def test_direct_base_rules(benchmark):
    workload = _workload()
    base, _ = _rules()
    report = benchmark(
        lambda: ObjectIdentifier(base, target=TARGET, chain=False).identify(
            workload.card, workload.billing
        )
    )
    quality = report.quality(workload.truth)
    benchmark.extra_info.update({k: round(v, 3) for k, v in quality.items()})


def test_direct_with_derived_rcks(benchmark):
    workload = _workload()
    base, rcks = _rules()
    report = benchmark(
        lambda: ObjectIdentifier(
            base + rcks, target=TARGET, chain=False
        ).identify(workload.card, workload.billing)
    )
    quality = report.quality(workload.truth)
    benchmark.extra_info.update({k: round(v, 3) for k, v in quality.items()})
    benchmark.extra_info["derived_rcks"] = len(rcks)


def test_chaining_engine(benchmark):
    workload = _workload()
    base, _ = _rules()
    report = benchmark(
        lambda: ObjectIdentifier(base, target=TARGET, chain=True).identify(
            workload.card, workload.billing
        )
    )
    quality = report.quality(workload.truth)
    benchmark.extra_info.update({k: round(v, 3) for k, v in quality.items()})


def test_blocked_rcks_efficiency(benchmark):
    workload = _workload()
    _, rcks = _rules()
    report = benchmark(
        lambda: BlockedObjectIdentifier(
            rcks, target=TARGET, chain=False
        ).identify(workload.card, workload.billing)
    )
    unblocked = ObjectIdentifier(rcks, target=TARGET, chain=False).identify(
        workload.card, workload.billing
    )
    assert report.matches == unblocked.matches
    assert report.comparisons * 5 < unblocked.comparisons
    benchmark.extra_info["blocked_comparisons"] = report.comparisons
    benchmark.extra_info["unblocked_comparisons"] = unblocked.comparisons


def test_match_quality_series(benchmark):
    """The paper's qualitative claims, asserted end-to-end."""
    workload = _workload()
    base, rcks = _rules()
    direct = ObjectIdentifier(base, target=TARGET, chain=False).identify(
        workload.card, workload.billing
    )
    enriched = benchmark(
        lambda: ObjectIdentifier(
            base + rcks, target=TARGET, chain=False
        ).identify(workload.card, workload.billing)
    )
    chained = ObjectIdentifier(base, target=TARGET, chain=True).identify(
        workload.card, workload.billing
    )
    rows = []
    for label, report in (
        ("MDs φ1–φ4 (direct)", direct),
        (f"+ {len(rcks)} derived RCKs (direct)", enriched),
        ("MDs φ1–φ4 (chaining engine)", chained),
    ):
        quality = report.quality(workload.truth)
        rows.append(
            [
                label,
                round(quality["precision"], 3),
                round(quality["recall"], 3),
                round(quality["f1"], 3),
                len(report.matches),
            ]
        )
    print_table(
        "EXP-MATCH: object identification quality",
        ["rule set", "precision", "recall", "F1", "matches"],
        rows,
    )
    direct_q = direct.quality(workload.truth)
    enriched_q = enriched.quality(workload.truth)
    chained_q = chained.quality(workload.truth)
    assert enriched_q["recall"] > direct_q["recall"]
    assert enriched_q["f1"] > direct_q["f1"]
    assert chained_q["recall"] >= enriched_q["recall"]
