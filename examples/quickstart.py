#!/usr/bin/env python
"""Quickstart: detect and repair inconsistencies with CFDs.

Recreates the paper's running example (Figures 1 and 2) end to end:

1. the customer instance D0 satisfies the traditional FDs f1 and f2 —
   classical detection sees nothing wrong;
2. the conditional functional dependencies ϕ1–ϕ3 expose errors in *every*
   tuple;
3. a cost-based U-repair fixes the violations by value modification.

Run:  python examples/quickstart.py
"""

from repro.cfd import detect_violations
from repro.deps import holds
from repro.paper import fig1_fds, fig1_instance, fig2_cfds
from repro.repair import repair_cfds


def main() -> None:
    db = fig1_instance()
    print("The customer instance D0 (Figure 1):")
    print(db.relation("customer").pretty())

    fds = fig1_fds()
    print("\nStep 1 — traditional FDs f1, f2:")
    print(f"  D0 ⊨ {{f1, f2}}?  {holds(db, fds)}  (no errors detected)")

    cfds = fig2_cfds()
    print("\nStep 2 — conditional functional dependencies (Figure 2):")
    for name, cfd in cfds.items():
        print(f"\n  {name}: {cfd!r}; pattern tableau:")
        for line in cfd.tableau.pretty().splitlines():
            print(f"    {line}")
    report = detect_violations(db, cfds.values())
    print(f"\n  {report.summary()}")
    for violation in report.violations:
        print(f"    - {violation.reason}")

    print("\nStep 3 — cost-based U-repair (§5.1):")
    result = repair_cfds(db, list(cfds.values()))
    print(f"  {result!r}")
    for change in result.changes:
        print(f"    - {change!r}")
    print("\nRepaired instance:")
    print(result.repaired.relation("customer").pretty())
    after = detect_violations(result.repaired, cfds.values())
    print(f"\n  violations after repair: {after.total}")


if __name__ == "__main__":
    main()
