#!/usr/bin/env python
"""Quickstart: detect and repair inconsistencies with CFDs.

Recreates the paper's running example (Figures 1 and 2) end to end:

1. the customer instance D0 satisfies the traditional FDs f1 and f2 —
   classical detection sees nothing wrong;
2. the conditional functional dependencies ϕ1–ϕ3 expose errors in *every*
   tuple;
3. a cost-based U-repair fixes the violations by value modification.

The whole lifecycle runs through one :class:`repro.session.Session`.

Run:  python examples/quickstart.py
"""

from repro.paper import fig1_fds, fig1_instance, fig2_cfds
from repro.session import Session


def main() -> None:
    db = fig1_instance()
    print("The customer instance D0 (Figure 1):")
    print(db.relation("customer").pretty())

    print("\nStep 1 — traditional FDs f1, f2:")
    fd_session = Session.from_instance(db, fig1_fds())
    print(f"  D0 ⊨ {{f1, f2}}?  {fd_session.is_clean()}  (no errors detected)")

    cfds = fig2_cfds()
    print("\nStep 2 — conditional functional dependencies (Figure 2):")
    for name, cfd in cfds.items():
        print(f"\n  {name}: {cfd!r}; pattern tableau:")
        for line in cfd.tableau.pretty().splitlines():
            print(f"    {line}")
    session = Session.from_instance(db, list(cfds.values()))
    report = session.detect()
    print(f"\n  {report.summary()}")
    for violation in report.violations:
        print(f"    - {violation.reason}")

    print("\nStep 3 — cost-based U-repair (§5.1):")
    result = session.repair(strategy="u")
    print(f"  {result!r}")
    for change in result.changes:
        print(f"    - {change!r}")
    print("\nRepaired instance:")
    print(result.repaired.relation("customer").pretty())
    print(f"\n  violations after repair: {result.residual.total}")


if __name__ == "__main__":
    main()
