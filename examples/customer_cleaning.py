#!/usr/bin/env python
"""Scaled cleaning pipeline: generate → profile → detect → repair → verify.

A downstream-user scenario on synthetic customer data with seeded errors
(the 1%–5% rates the paper quotes):

* discover CFDs from a clean sample (profiling, §1);
* compare the detection power of FDs vs CFDs against ground truth;
* repair with the cost-based heuristic and measure how many injected
  errors were actually restored.

Run:  python examples/customer_cleaning.py
"""

from repro.session import Session
from repro.workloads import CustomerConfig, generate_customers


def recall(workload, dependencies) -> float:
    report = Session.from_instance(workload.db, dependencies).detect()
    tuples = workload.db.relation("customer").tuples()
    index_of = {t: i for i, t in enumerate(tuples)}
    caught = {index_of[t] for _, t in report.violating_tuples()}
    dirty = workload.dirty_row_indices()
    return len(caught & dirty) / len(dirty) if dirty else 1.0


def main() -> None:
    config = CustomerConfig(n_tuples=1000, error_rate=0.04, seed=42)
    workload = generate_customers(config)
    print(
        f"Generated {config.n_tuples} customers, "
        f"{len(workload.errors)} cells corrupted "
        f"({config.error_rate:.0%} tuple error rate)."
    )

    print("\n-- Profiling: discover rules from a clean sample --")
    clean_session = Session.from_instance(workload.clean_db)
    discovered = clean_session.discover(
        relation="customer", max_lhs=2, min_support=10, rhs_attributes=["city"]
    )
    for d in discovered[:5]:
        print(f"  {d!r}")
    print(f"  ... {len(discovered)} rules discovered in total")

    print("\n-- Detection: FDs vs CFDs --")
    print(f"  FD  recall: {recall(workload, workload.fds()):.3f}")
    print(f"  CFD recall: {recall(workload, workload.cfds()):.3f}")

    print("\n-- Repair: cost-based value modification --")
    session = Session.from_instance(workload.db, workload.cfds())
    result = session.repair(strategy="u")
    print(f"  {result!r}")

    repaired = {t["phn"]: t for t in result.repaired.relation("customer")}
    clean = workload.clean_db.relation("customer").tuples()
    restored = sum(
        1
        for e in workload.errors
        if repaired[clean[e.row_index]["phn"]][e.attribute] == e.clean
    )
    print(
        f"  restored {restored}/{len(workload.errors)} injected errors "
        "to the ground-truth value"
    )
    print(f"  violations remaining: {result.residual.total}")


if __name__ == "__main__":
    main()
