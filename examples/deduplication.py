#!/usr/bin/env python
"""Merge/purge deduplication and master-data repair (paper §3.1 and §5.1).

Two halves of the "uniform dependency-based framework" the paper calls
for in the §5.1 Remark:

1. **merge/purge** — run matching rules reflexively over one dirty
   relation, cluster the tuples describing the same person, and emit one
   golden record per entity (weighted per-attribute voting);
2. **master-data repair** — match dirty tuples against trusted reference
   data with a relative key and copy the trusted values in, logging every
   edit with its w(t,A)·dis(v,v′) cost.

Run:  python examples/deduplication.py
"""

from repro.deps.fd import FD
from repro.md.dedup import deduplicate
from repro.md.model import MD, RelativeKey
from repro.md.similarity import EQ, EditDistanceSimilarity
from repro.relational.domains import STRING
from repro.relational.instance import DatabaseInstance, RelationInstance
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair.master import repair_with_master_data
from repro.session import Session


def main() -> None:
    schema = RelationSchema(
        "people", [("name", STRING), ("phone", STRING), ("city", STRING)]
    )
    dirty = RelationInstance(
        schema,
        [
            ("John Smith", "555-0101", "Edinburgh"),
            ("Jon Smith", "555-0101", "Edinburgh"),
            ("J. Smith", "555-0101", "Edinburg"),
            ("Mary Chen", "555-0202", "London"),
            ("Maria Cheng", "555-0203", "Leeds"),
            ("Wei Zhang", "555-0303", "Glasgow"),
        ],
    )
    print("Dirty relation:")
    print(dirty.pretty())

    # An exact FD phone → name flags the duplicate clusters but cannot say
    # which spelling is right — that is what the matching rules below add.
    db = DatabaseInstance(DatabaseSchema([schema]), {"people": dirty.tuples()})
    fd_report = Session.from_instance(
        db, [FD("people", ["phone"], ["name"])]
    ).detect()
    print(f"\nFD phone → name: {fd_report.summary()}")

    rules = [
        MD(
            "people", "people",
            [("phone", "phone", EQ)],
            ["name", "phone", "city"], ["name", "phone", "city"],
            name="same-phone",
        ),
        MD(
            "people", "people",
            [("name", "name", EditDistanceSimilarity(2)), ("city", "city", EQ)],
            ["name", "phone", "city"], ["name", "phone", "city"],
            name="similar-name-same-city",
        ),
    ]
    result = deduplicate(dirty, rules)
    print(f"\n{result!r}")
    for cluster in result.clusters:
        if len(cluster) > 1:
            names = [t["name"] for t in cluster.members]
            print(f"  merged {names} → {cluster.golden['name']!r}")
    print("\nConsolidated relation:")
    print(result.consolidated.pretty())

    print("\n-- Master-data repair --")
    master_schema = RelationSchema(
        "master", [("id", STRING), ("name", STRING), ("home_city", STRING)]
    )
    master = RelationInstance(
        master_schema,
        [
            ("555-0101", "John Smith", "Edinburgh"),
            ("555-0202", "Mary Chen", "London"),
        ],
    )
    key = RelativeKey(
        "people", "master",
        [("phone", "id")], [EQ],
        ["name", "city"], ["name", "home_city"],
        name="phone-key",
    )
    repair = repair_with_master_data(
        result.consolidated, master,
        [key], {"name": "name", "city": "home_city"},
    )
    print(repair)
    for change in repair.changes:
        print(f"  {change!r}")
    print("\nAfter master repair:")
    print(repair.repaired.pretty())


if __name__ == "__main__":
    main()
