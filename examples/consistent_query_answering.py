#!/usr/bin/env python
"""Consistent query answering without repairing (paper §5.2).

A key-violating employee relation is queried three ways:

1. exhaustive semantics — intersect the answers over *all* repairs
   (exponential, the reference);
2. first-order rewriting — the PTIME evaluation of Theorem 5.2's
   tractable case, same answers;
3. range-consistent aggregates — the [glb, lub] semantics for
   SUM/COUNT/MIN/MAX over repairs (§5.2's aggregate remark).

Run:  python examples/consistent_query_answering.py
"""

from repro.cqa import (
    certain_answers,
    certain_sp,
    possible_answers,
    range_count,
    range_max,
    range_sum,
)
from repro.deps.fd import FD
from repro.relational.domains import INT, STRING
from repro.relational.instance import DatabaseInstance
from repro.relational.query import Base, Project
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.repair import count_repairs_by_components
from repro.session import Session


def main() -> None:
    schema = RelationSchema(
        "emp", [("id", STRING), ("dept", STRING), ("salary", INT)]
    )
    db = DatabaseInstance(
        DatabaseSchema([schema]),
        {
            "emp": [
                ("e1", "sales", 100),
                ("e1", "sales", 120),      # conflicting salary for e1
                ("e2", "eng", 150),
                ("e3", "eng", 90),
                ("e3", "ops", 90),         # conflicting dept for e3
            ]
        },
    )
    key = FD("emp", ["id"], ["dept", "salary"])
    print("Inconsistent employee relation (key: id):")
    print(db.relation("emp").pretty())
    session = Session.from_instance(db, [key])
    print(f"\n{session.detect().summary()}")
    print(f"repairs: {count_repairs_by_components(db, [key])}")

    query = Project(Base("emp"), ["dept"])
    print("\nQ: π_dept(emp)")
    print(f"  certain answers  (∩ over repairs): {certain_answers(db, [key], query)}")
    print(f"  possible answers (∪ over repairs): {possible_answers(db, [key], query)}")
    rewritten = certain_sp(db, "emp", key=["id"], projection=["dept"])
    print(f"  PTIME rewriting            : {rewritten}")

    print("\nAggregates across repairs:")
    print(f"  SUM(salary)  ∈ {range_sum(db, 'emp', ['id'], 'salary')!r}")
    print(f"  MAX(salary)  ∈ {range_max(db, 'emp', ['id'], 'salary')!r}")
    print(f"  COUNT(*)     ∈ {range_count(db, 'emp', ['id'])!r}")
    eng_count = range_count(
        db, "emp", ["id"], predicate=lambda t: t["dept"] == "eng"
    )
    print(f"  COUNT(dept='eng') ∈ {eng_count!r}")
    print(
        "\n(e2's row is conflict-free, so 'eng' is a certain dept answer; "
        "e1's salary swings the SUM range by 20.)"
    )


if __name__ == "__main__":
    main()
