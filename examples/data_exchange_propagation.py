#!/usr/bin/env python
"""Dependency propagation for data integration (paper §4.1, Example 4.2).

Three customer sources — UK (R1), US (R2), Netherlands (R3) — are
integrated by a union view that tags each tuple with its country code.
Source FDs do *not* survive integration unconditionally (area code 20 is
both London and Amsterdam); they survive as *conditional* dependencies.

This example (1) decides propagation symbolically, (2) materializes the
view on concrete data to show the propagated CFDs holding and the naive
FDs failing, and (3) uses CINDs to check source-to-target containment.

Run:  python examples/data_exchange_propagation.py
"""

from repro.cfd.model import CFD, UNNAMED
from repro.deps.base import holds
from repro.deps.fd import FD
from repro.paper import example42_sources
from repro.propagation import propagates, tagged_union_view
from repro.relational.domains import INT
from repro.relational.instance import DatabaseInstance
from repro.relational.schema import Attribute, DatabaseSchema
from repro.session import Session


def main() -> None:
    schema = example42_sources()
    view = tagged_union_view(
        [("R1", 44), ("R2", 1), ("R3", 31)], Attribute("CC", INT)
    )
    view_schema = view.output_schema(schema)
    print(f"Integration view schema: {view_schema!r}")

    sigma = [
        FD("R1", ["zip"], ["street"]),   # f3: UK only
        FD("R1", ["AC"], ["city"]),      # f4
        FD("R2", ["AC"], ["city"]),      # f5
        FD("R3", ["AC"], ["city"]),      # f6
    ]
    name = view_schema.name
    candidates = {
        "f3: zip → street (unconditional)": CFD(
            name, ["zip"], ["street"], [{"zip": UNNAMED, "street": UNNAMED}]
        ),
        "AC → city (unconditional)": CFD(
            name, ["AC"], ["city"], [{"AC": UNNAMED, "city": UNNAMED}]
        ),
        "ϕ7: (CC=44) zip → street": CFD(
            name, ["CC", "zip"], ["street"],
            [{"CC": 44, "zip": UNNAMED, "street": UNNAMED}],
        ),
        "ϕ8: (CC=c) AC → city": CFD(
            name, ["CC", "AC"], ["city"],
            [{"CC": c, "AC": UNNAMED, "city": UNNAMED} for c in (44, 31, 1)],
        ),
    }

    print("\nPropagation analysis (Σ0 ⊨σ0 φ?):")
    for label, cfd in candidates.items():
        print(f"  {label:<38} {propagates(schema, sigma, view, cfd)}")

    print("\nConcrete check — sources where area code 20 is reused:")
    db = DatabaseInstance(schema)
    db.relation("R1").add(("EH4 8LE", "Mayfield", 131, "EDI"))
    db.relation("R1").add(("SW1A 1AA", "Downing", 20, "LDN"))
    db.relation("R2").add(("07974", "Mtn Ave", 908, "MH"))
    db.relation("R3").add(("1011 AB", "Damrak", 20, "AMS"))
    assert holds(db, sigma)
    materialized = view.evaluate(db)
    print(materialized.pretty())

    view_db = DatabaseInstance(
        DatabaseSchema([materialized.schema]),
        {materialized.schema.name: materialized.tuples()},
    )
    naive = candidates["AC → city (unconditional)"]
    conditional = candidates["ϕ8: (CC=c) AC → city"]
    naive_clean = Session.from_instance(view_db, [naive]).is_clean()
    conditional_clean = Session.from_instance(view_db, [conditional]).is_clean()
    print(f"\n  view ⊨ AC → city?            {naive_clean}"
          "   (20 → LDN vs AMS)")
    print(f"  view ⊨ ϕ8 (conditional)?     {conditional_clean}")


if __name__ == "__main__":
    main()
