#!/usr/bin/env python
"""Object identification with matching dependencies (paper §3).

The fraud-detection scenario: card and billing records describe the same
people under different representations ("John Smith" vs "J. Smith",
"Mountain Avenue" vs "Mtn Ave").  The pipeline:

1. state the matching rules φ1–φ4 of Example 3.1 as MDs;
2. derive relative candidate keys from them by generic reasoning
   (Theorem 4.8 / Example 4.3) — including the paper's derived rule
   ([LN, tel, FN], [SN, phn, FN]);
3. match with and without the derived rules and compare quality.

Run:  python examples/object_identification.py
"""

from repro.deps.ind import IND
from repro.md import ObjectIdentifier, derive_rcks, md_implies
from repro.paper import YB, YC, example31_mds, example32_rcks
from repro.session import Session
from repro.workloads import CardBillingConfig, generate_card_billing


def main() -> None:
    sigma = list(example31_mds().values())
    print("Matching dependencies (Example 3.1):")
    for md in sigma:
        print(f"  {md!r}")

    print("\nImplication analysis (Example 4.3): Σ1 ⊨m rck_i ?")
    for name, rck in example32_rcks().items():
        print(f"  {name}: {md_implies(sigma, rck)}")

    print("\nDeriving relative candidate keys from Σ1 ...")
    rcks = derive_rcks(sigma, list(YC), list(YB), max_length=3)
    for rck in rcks:
        premises = " ∧ ".join(repr(p) for p in rck.premises)
        print(f"  RCK: {premises}")

    workload = generate_card_billing(
        CardBillingConfig(n_people=150, unrelated_billing=50, seed=7)
    )
    print(
        f"\nMatching {len(workload.card)} card holders against "
        f"{len(workload.billing)} billing records "
        f"({len(workload.truth)} true pairs)..."
    )
    # Exact inclusion billing[phn] ⊆ card[tel] over the session facade: the
    # violations are exactly the records exact matching cannot link —
    # unrelated billings plus the noisy representations MDs are made for.
    exact = Session.from_instance(
        workload.db, [IND("billing", ["phn"], "card", ["tel"])]
    ).detect()
    print(f"  billing records with no exact card match: {exact.total}")
    target = (list(YC), list(YB))
    base_report = ObjectIdentifier(sigma, target=target, chain=False).identify(
        workload.card, workload.billing
    )
    full_report = ObjectIdentifier(
        sigma + rcks, target=target, chain=False
    ).identify(workload.card, workload.billing)
    chained_report = ObjectIdentifier(sigma, target=target).identify(
        workload.card, workload.billing
    )
    print(f"\n  {'rule set':<32} {'precision':>9} {'recall':>7} {'F1':>6}")
    for label, report in (
        ("MDs φ1–φ4 (direct)", base_report),
        ("+ derived RCKs (direct)", full_report),
        ("MDs φ1–φ4 (chaining engine)", chained_report),
    ):
        q = report.quality(workload.truth)
        print(
            f"  {label:<32} {q['precision']:>9.3f} "
            f"{q['recall']:>7.3f} {q['f1']:>6.3f}"
        )
    gained = len(full_report.matches - base_report.matches)
    print(f"\n  true matches found only via derived rules: {gained}")
    print(
        "  (direct = each rule applied on source values, the practical\n"
        "   mode of §3.3; derived RCKs compile the reasoning chain into\n"
        "   direct comparisons — §3.1's 'derived comparison vectors')"
    )


if __name__ == "__main__":
    main()
